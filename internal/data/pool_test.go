package data

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestEncodedMatchesFreshEncoder(t *testing.T) {
	write := func(e *Encoder) error {
		if err := e.Uvarint(300); err != nil {
			return err
		}
		if err := e.String("hello"); err != nil {
			return err
		}
		return e.Bytes([]byte{1, 2, 3})
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := write(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Encoded(write)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("Encoded = %x, fresh encoder = %x", got, buf.Bytes())
	}
}

func TestEncodedResultsAreIndependent(t *testing.T) {
	// Sequential calls reuse the pooled buffer; earlier results must not
	// be clobbered by later encodes.
	a, err := Encoded(func(e *Encoder) error { return e.String("first-result") })
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), a...)
	if _, err := Encoded(func(e *Encoder) error { return e.String("second, longer result") }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Error("earlier Encoded result mutated by a later call")
	}
}

func TestEncodedError(t *testing.T) {
	wantErr := fmt.Errorf("user error")
	if _, err := Encoded(func(*Encoder) error { return wantErr }); err != wantErr {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}

func TestEncodedConcurrent(t *testing.T) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs := make([]Record, 50)
			for i := range recs {
				recs[i] = KV(fmt.Sprintf("g%d-k%d", g, i), int64(g*1000+i))
			}
			for round := 0; round < 50; round++ {
				payload, err := EncodeAll(c, recs)
				if err != nil {
					errs[g] = err
					return
				}
				out, err := DecodeAll(c, payload)
				if err != nil {
					errs[g] = err
					return
				}
				if len(out) != len(recs) || out[0].Key != recs[0].Key {
					errs[g] = fmt.Errorf("round-trip mismatch on goroutine %d", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestDecodeAllCorruptCountNoHugeAlloc(t *testing.T) {
	// A payload claiming 2^29 records but holding a few bytes must fail
	// with a decode error, not preallocate gigabytes first.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Uvarint(1 << 29); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	c := KVCoder{K: StringCoder, V: Int64Coder}
	if _, err := DecodeAll(c, buf.Bytes()); err == nil {
		t.Error("expected decode error on truncated payload")
	}
}

func TestEncoderReset(t *testing.T) {
	var a, b bytes.Buffer
	e := NewEncoder(&a)
	if err := e.String("to-a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Reset(&b)
	if err := e.String("to-b"); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	da := NewDecoder(bytes.NewReader(a.Bytes()))
	if s, err := da.String(); err != nil || s != "to-a" {
		t.Errorf("a = %q, %v", s, err)
	}
	db := NewDecoder(bytes.NewReader(b.Bytes()))
	if s, err := db.String(); err != nil || s != "to-b" {
		t.Errorf("b = %q, %v", s, err)
	}
}
