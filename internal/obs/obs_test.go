package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pado/internal/metrics"
	"pado/internal/vtime"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	b := tr.Buf()
	if b != nil {
		t.Fatalf("nil tracer handed out non-nil buf %v", b)
	}
	b.Emit(Event{Kind: TaskLaunched}) // must not panic
	tr.FeedCounters(&metrics.Job{})
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	if tr.Len() != 0 {
		t.Fatalf("nil tracer Len = %d", tr.Len())
	}
}

// TestConcurrentEmitMergesMonotonic is the tentpole concurrency
// contract: N goroutines emitting into their own buffers merge into one
// event stream monotonically ordered by virtual time, with no event
// lost.
func TestConcurrentEmitMergesMonotonic(t *testing.T) {
	tr := New()
	const goroutines = 16
	const perG = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		b := tr.Buf() // one buffer per goroutine
		wg.Add(1)
		go func(g int, b *Buf) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Emit(Event{Kind: TaskFinished, Stage: g, Task: i, Exec: fmt.Sprintf("t%d", g)})
			}
		}(g, b)
	}
	wg.Wait()

	evs := tr.Events()
	if len(evs) != goroutines*perG {
		t.Fatalf("merged %d events, want %d", len(evs), goroutines*perG)
	}
	if tr.Len() != len(evs) {
		t.Fatalf("Len = %d, Events = %d", tr.Len(), len(evs))
	}
	seen := make(map[int]int) // stage -> count
	for i, ev := range evs {
		if i > 0 && ev.T < evs[i-1].T {
			t.Fatalf("event %d out of order: %v after %v", i, ev.T, evs[i-1].T)
		}
		seen[ev.Stage]++
	}
	for g := 0; g < goroutines; g++ {
		if seen[g] != perG {
			t.Fatalf("goroutine %d: %d events survived, want %d", g, seen[g], perG)
		}
	}
	// Per-buffer order must be preserved for same-timestamp events
	// (stable merge): task indices within one stage stay increasing
	// whenever timestamps tie, which the fake-clock test below pins
	// down exactly; here we just require global monotonicity held.
}

// TestParseKindRoundTrip pins the name table: every kind's String must
// parse back to the same kind, unknown names must not parse, and the
// sentinel must stay out of reach.
func TestParseKindRoundTrip(t *testing.T) {
	for k := KindNone; k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := ParseKind("no_such_kind"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if _, ok := ParseKind(""); ok {
		t.Error("ParseKind accepted the empty string")
	}
}

// TestEventsWhileEmitting drives concurrent Buf.Emit against repeated
// Tracer.Events/Len merges (the analyzer and exporters snapshot while
// executors may still be draining). Run under -race this pins the
// locking contract: snapshots are consistent prefixes, never torn.
func TestEventsWhileEmitting(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 400

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		b := tr.Buf()
		wg.Add(1)
		go func(g int, b *Buf) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Emit(Event{Kind: PushStarted, Stage: g, Task: i, Bytes: int64(i)})
			}
		}(g, b)
	}
	// Merge continuously while emitters run; every snapshot must be
	// internally ordered and no larger than the final count.
	var snaps int
	go func() {
		defer close(stop)
		wg.Wait()
	}()
	for {
		evs := tr.Events()
		if len(evs) > goroutines*perG {
			t.Errorf("snapshot invented events: %d", len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].T < evs[i-1].T {
				t.Fatalf("snapshot out of order at %d", i)
			}
		}
		if n := tr.Len(); n > goroutines*perG {
			t.Errorf("Len overcounted: %d", n)
		}
		snaps++
		select {
		case <-stop:
			if final := tr.Events(); len(final) != goroutines*perG {
				t.Fatalf("final merge %d events, want %d (after %d live snapshots)",
					len(final), goroutines*perG, snaps)
			}
			return
		default:
		}
	}
}

func TestFakeClockTimestamps(t *testing.T) {
	clk := vtime.NewFake(time.Unix(0, 0))
	tr := NewWithClock(clk)
	b := tr.Buf()
	b.Emit(Event{Kind: StageScheduled, Stage: 0})
	clk.Advance(3 * time.Second)
	b.Emit(Event{Kind: StageComplete, Stage: 0})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].T != 0 || evs[1].T != 3*time.Second {
		t.Fatalf("timestamps = %v, %v; want 0, 3s", evs[0].T, evs[1].T)
	}
}

func TestFeedCounters(t *testing.T) {
	reg := &metrics.Job{}
	tr := New()
	tr.FeedCounters(reg)
	b := tr.Buf()
	b.Emit(Event{Kind: ContainerEvicted, Exec: "t1"})
	b.Emit(Event{Kind: ContainerEvicted, Exec: "t2"})
	b.Emit(Event{Kind: TaskRelaunched, Stage: 1, Task: 0})
	if got := reg.Counter("obs.container_evicted").Load(); got != 2 {
		t.Fatalf("obs.container_evicted = %d, want 2", got)
	}
	if got := reg.Counter("obs.task_relaunched").Load(); got != 1 {
		t.Fatalf("obs.task_relaunched = %d, want 1", got)
	}
	snap := reg.Snapshot(0, false)
	if snap.Named["obs.container_evicted"] != 2 {
		t.Fatalf("snapshot named = %v", snap.Named)
	}
}

// sampleEvents builds a tiny but representative run: a task span, a push
// span, a fetch span, an eviction, a relaunch, and cache traffic.
func sampleEvents() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{T: ms(0), Kind: ContainerUp, Exec: "t1", Note: "transient"},
		{T: ms(0), Kind: ContainerUp, Exec: "r2", Note: "reserved"},
		{T: ms(1), Kind: StageScheduled, Stage: 0},
		{T: ms(1), Kind: TaskLaunched, Stage: 0, Frag: ReservedFrag, Task: 0, Exec: "r2"},
		{T: ms(2), Kind: ReceiverReady, Stage: 0, Task: 0, Exec: "r2"},
		{T: ms(2), Kind: TaskLaunched, Stage: 0, Frag: 0, Task: 3, Attempt: 0, Exec: "t1"},
		{T: ms(3), Kind: CacheMiss, Stage: 0, Task: 3, Exec: "t1"},
		{T: ms(4), Kind: FetchStarted, Stage: 0, Frag: 0, Task: 3, Exec: "t1"},
		{T: ms(6), Kind: FetchDone, Stage: 0, Frag: 0, Task: 3, Exec: "t1", Bytes: 4096},
		{T: ms(7), Kind: TaskFinished, Stage: 0, Frag: 0, Task: 3, Exec: "t1"},
		{T: ms(7), Kind: PushStarted, Stage: 0, Frag: 0, Task: 3, Exec: "t1", Bytes: 2048},
		{T: ms(8), Kind: ContainerEvicted, Exec: "t1"},
		{T: ms(8), Kind: TaskRelaunched, Stage: 0, Frag: 0, Task: 3, Attempt: 1},
		{T: ms(9), Kind: PushCommitted, Stage: 0, Frag: 0, Task: 3, Exec: "t1"},
		{T: ms(10), Kind: TaskFinished, Stage: 0, Frag: ReservedFrag, Task: 0, Exec: "r2"},
		{T: ms(10), Kind: StageComplete, Stage: 0},
	}
}

// TestChromeTraceRoundTrips pins the exporter contract: the output is
// valid JSON in the trace_event object form, span pairs fold into "X"
// slices, and every input event survives into the output.
func TestChromeTraceRoundTrips(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, vtime.Scale{}); err != nil {
		t.Fatal(err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if parsed.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}

	var slices, instants, meta int
	names := make(map[string]int)
	for _, ce := range parsed.TraceEvents {
		names[ce.Name]++
		switch ce.Phase {
		case "X":
			slices++
			if ce.Dur <= 0 {
				t.Errorf("slice %q has non-positive dur %v", ce.Name, ce.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ce.Phase)
		}
	}
	// Spans: transient task (launch->finish), reserved task, push
	// (start->commit), fetch (start->done).
	if slices != 4 {
		t.Errorf("slices = %d, want 4 (task, reserved_task, push, fetch)", slices)
	}
	for _, want := range []string{"task", "reserved_task", "push", "fetch", "container_evicted", "task_relaunched"} {
		if names[want] == 0 {
			t.Errorf("output missing %q event", want)
		}
	}
	if meta < 3 { // process_name + at least master/t1/r2 thread names
		t.Errorf("only %d metadata events", meta)
	}

	// Timestamps must be monotone within the non-meta stream ordering
	// guarantees aside, ts values must be finite and non-negative.
	for _, ce := range parsed.TraceEvents {
		if ce.TS < 0 {
			t.Errorf("negative ts on %q", ce.Name)
		}
	}
}

func TestChromeTraceScaledTimestamps(t *testing.T) {
	scale := vtime.NewScale(10 * time.Millisecond) // 10ms wall = 1 paper minute
	events := []Event{
		{T: 10 * time.Millisecond, Kind: StageScheduled, Stage: 0},
		{T: 20 * time.Millisecond, Kind: StageComplete, Stage: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, scale); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	for _, ce := range parsed.TraceEvents {
		if ce.Name == "stage_scheduled" && ce.TS != 1e6 {
			t.Errorf("scaled ts = %v, want 1e6 (1 paper minute = 1s of trace)", ce.TS)
		}
	}
}

func TestTimelineSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, sampleEvents(), vtime.Scale{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"stage 0 scheduled", "stage 0 complete",
		"container t1 evicted",
		"containers: 2 launched, 1 evicted, 0 failed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkEmitDisabled measures the no-op path: a nil Buf must cost a
// pointer check, nothing more.
func BenchmarkEmitDisabled(b *testing.B) {
	var buf *Buf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Emit(Event{Kind: TaskFinished, Stage: 1, Task: i})
	}
}

// BenchmarkEmitEnabled measures the enabled path for contrast.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New()
	buf := tr.Buf()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Emit(Event{Kind: TaskFinished, Stage: 1, Task: i})
	}
}
