// Package obs provides the runtime's structured observability layer: a
// lightweight tracer that records typed, virtually-timestamped events
// along the whole execution path (task launches and relaunches, container
// evictions, push/commit and fetch waves, stage transitions, cache
// traffic), plus exporters that turn a recorded event stream into a
// Chrome trace_event JSON file (loadable in chrome://tracing or Perfetto)
// and a plain-text per-stage timeline.
//
// The paper's evaluation (§5) reasons entirely from when things happened
// — eviction storms, relaunch cascades, push waves racing receiver setup
// — and end-of-job counters cannot answer those questions. A Trace can.
//
// Design constraints:
//
//   - Near-zero cost when disabled: a nil *Tracer (and the nil *Buf it
//     hands out) is the off switch; every method is nil-safe and returns
//     after one pointer check, so instrumented code never branches on a
//     config flag and benchmarks with tracing off are unaffected.
//   - Allocation-conscious when enabled: events are flat value structs
//     appended to per-component buffers (one Buf per master, executor,
//     or test goroutine), each guarded by its own uncontended mutex, and
//     merged into one vtime-ordered stream only when the job ends.
//   - Engine-agnostic schema: the Pado runtime and the sparklike
//     baseline emit the same event kinds, making side-by-side trajectory
//     comparison of the two engines possible.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pado/internal/metrics"
	"pado/internal/vtime"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds shared by every engine.
const (
	KindNone Kind = iota

	// Task lifecycle. "Task" covers both transient fragment tasks and
	// reserved tasks (receivers); the latter use Frag == ReservedFrag.
	TaskLaunched
	TaskFinished
	TaskRelaunched
	TaskFailed

	// Container lifecycle as seen by the engine's master.
	ContainerUp
	ContainerEvicted
	ContainerFailed

	// ReceiverReady marks a reserved task registered and accepting
	// pushes (Pado runtime only).
	ReceiverReady

	// Push path: a task output starting its escape toward reserved
	// executors (or stable storage for the checkpoint baseline), and the
	// master-acknowledged commit of that output.
	PushStarted
	PushCommitted

	// Fetch path: cross-stage input transfers (pulls, broadcasts,
	// shuffle reads).
	FetchStarted
	FetchDone

	// Stage transitions on the master.
	StageScheduled
	StageComplete

	// Task-input-cache lookups on executors.
	CacheHit
	CacheMiss

	// ChaosInjected marks a scripted fault firing (internal/chaos), so
	// traces show when each injection landed relative to pushes/commits.
	ChaosInjected

	// JobAborted marks the master giving up on the job (a failure
	// threshold tripped, or the event queue overflowed).
	JobAborted

	// PlanCompiled marks the compiler producing the physical plan; Note
	// carries the placement-policy name, so every trace is
	// self-describing about which policy produced its placements.
	PlanCompiled

	// Job lifecycle on a multi-job master (JobManager): submission,
	// the admission decision (admitted / queued behind the budget /
	// rejected outright), and completion. All carry Event.Job.
	JobSubmitted
	JobAdmitted
	JobQueued
	JobRejected
	JobCompleted

	// JobTimedOut marks a job abandoned by its deadline: unlike
	// JobCompleted it is NOT a completion — analyzer reports and the
	// chaos checker treat the job as unfinished. Note carries the cause.
	JobTimedOut

	// Failure-detector lifecycle on the master (alive → suspect → dead).
	// HeartbeatMissed fires when a node's heartbeat is overdue at a
	// detector tick; SuspicionRaised/Cleared bracket the suspect state;
	// NodeDeclaredDead marks the detector giving up on a node and
	// driving eviction-style recovery. All carry Exec.
	HeartbeatMissed
	SuspicionRaised
	SuspicionCleared
	NodeDeclaredDead

	// Per-destination circuit breaker transitions on the RPC policy
	// layer. Exec carries the quarantined destination; Note the owner
	// node and cause.
	BreakerOpened
	BreakerClosed

	// Incremental re-execution (DESIGN.md §14). StageSkipped marks a
	// stage served whole from the commit store (it is followed by a
	// StageComplete but never a StageScheduled); TaskSkipped marks one
	// fragment task whose output was served from a task-level commit.
	StageSkipped
	TaskSkipped

	kindCount // sentinel: number of kinds
)

var kindNames = [kindCount]string{
	KindNone:         "none",
	TaskLaunched:     "task_launched",
	TaskFinished:     "task_finished",
	TaskRelaunched:   "task_relaunched",
	TaskFailed:       "task_failed",
	ContainerUp:      "container_up",
	ContainerEvicted: "container_evicted",
	ContainerFailed:  "container_failed",
	ReceiverReady:    "receiver_ready",
	PushStarted:      "push_started",
	PushCommitted:    "push_committed",
	FetchStarted:     "fetch_started",
	FetchDone:        "fetch_done",
	StageScheduled:   "stage_scheduled",
	StageComplete:    "stage_complete",
	CacheHit:         "cache_hit",
	CacheMiss:        "cache_miss",
	ChaosInjected:    "chaos_injected",
	JobAborted:       "job_aborted",
	PlanCompiled:     "plan_compiled",
	JobSubmitted:     "job_submitted",
	JobAdmitted:      "job_admitted",
	JobQueued:        "job_queued",
	JobRejected:      "job_rejected",
	JobCompleted:     "job_completed",
	JobTimedOut:      "job_timed_out",
	HeartbeatMissed:  "heartbeat_missed",
	SuspicionRaised:  "suspicion_raised",
	SuspicionCleared: "suspicion_cleared",
	NodeDeclaredDead: "node_declared_dead",
	BreakerOpened:    "breaker_opened",
	BreakerClosed:    "breaker_closed",
	StageSkipped:     "stage_skipped",
	TaskSkipped:      "task_skipped",
}

// kindByName inverts kindNames, built once on first ParseKind call.
var (
	kindByNameOnce sync.Once
	kindByName     map[string]Kind
)

// ParseKind maps a kind name ("push_started") back to its Kind. Plan
// files (internal/chaos) name trigger events by these strings, and the
// chaos engine parses one per trigger rule, so the lookup is a map
// built once rather than a scan over every kind.
func ParseKind(name string) (Kind, bool) {
	kindByNameOnce.Do(func() {
		kindByName = make(map[string]Kind, kindCount)
		for k := KindNone; k < kindCount; k++ {
			kindByName[kindNames[k]] = k
		}
	})
	k, ok := kindByName[name]
	return k, ok
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < kindCount {
		return kindNames[k]
	}
	return "unknown"
}

// ReservedFrag is the Frag value marking reserved tasks (receivers),
// which live outside any transient fragment.
const ReservedFrag = -1

// Event is one timestamped occurrence. It is a flat value type so event
// buffers are single contiguous allocations; fields that do not apply to
// a kind are left at their zero values (Stage/Frag/Task default to -1
// via the emit helpers only where ambiguity matters — emitters set the
// fields they know).
type Event struct {
	// T is the event's virtual timestamp: time elapsed on the tracer's
	// vtime clock since the tracer was created (job start).
	T time.Duration
	// Kind classifies the event.
	Kind Kind
	// Job scopes the event to one job on a multi-job master. 0 means
	// fleet-wide / unscoped (container lifecycle, chaos injections, and
	// every event of a single-job run); JobManager job ids start at 1.
	// Buffers handed out by Tracer.JobBuf stamp it automatically.
	Job int
	// Stage is the physical stage id (or the parent stage being fetched
	// from, for Fetch* events). -1 when not stage-scoped.
	Stage int
	// Frag is the fragment index within the stage; ReservedFrag for
	// reserved tasks; 0 for engines without fragments.
	Frag int
	// Task is the task (or partition) index. -1 when not task-scoped.
	Task int
	// Attempt is the task attempt number.
	Attempt int
	// Exec is the container/executor id the event concerns ("" for the
	// master process itself).
	Exec string
	// Bytes is the payload size for data-movement events.
	Bytes int64
	// Note carries free-form detail (container kind, error text).
	Note string
}

// Tracer records events from many components into per-component buffers
// and merges them on demand. The zero value is not useful; use New. A
// nil *Tracer is the disabled tracer: every method is a nil-safe no-op.
type Tracer struct {
	clock vtime.Clock
	start time.Time

	// sink mirrors per-kind event counts into a metrics registry; wired
	// by FeedCounters. Atomic because an already-attached consumer (the
	// chaos engine's injector) may Emit concurrently with the wiring.
	sink [kindCount]atomic.Pointer[metrics.Counter]

	// fan, when set, is the immutable live-consumer set: one optional
	// synchronous tap (SetTap — the chaos engine triggers faults off it
	// inline) plus any number of asynchronous Subscribers with bounded
	// buffers (the introspection plane's /events stream). Published
	// copy-on-write under mu; nil when nobody is listening, so the
	// emit-path cost with no live consumers is one atomic load.
	fan atomic.Pointer[fanout]

	mu   sync.Mutex
	bufs []*Buf
}

// New returns a Tracer timestamping against the real clock, starting
// now.
func New() *Tracer { return NewWithClock(vtime.Real()) }

// NewWithClock returns a Tracer timestamping against clk (a vtime.Fake
// in tests makes event times deterministic).
func NewWithClock(clk vtime.Clock) *Tracer {
	return &Tracer{clock: clk, start: clk.Now()}
}

// FeedCounters mirrors every subsequently emitted event into reg as a
// named counter ("obs.task_launched", "obs.container_evicted", ...), so
// the metrics registry carries event totals even when the full event
// stream is discarded. Call before any Buf emits; nil-safe.
func (t *Tracer) FeedCounters(reg *metrics.Job) {
	if t == nil || reg == nil {
		return
	}
	for k := KindNone + 1; k < kindCount; k++ {
		t.sink[k].Store(reg.Counter("obs." + k.String()))
	}
}

// Buf registers and returns a new event buffer. Components (the master,
// each executor, each test goroutine) hold their own Buf so emissions
// never contend with each other; the tracer merges all buffers in
// Events. A nil tracer returns a nil Buf, which swallows emissions.
func (t *Tracer) Buf() *Buf {
	if t == nil {
		return nil
	}
	b := &Buf{t: t}
	t.mu.Lock()
	t.bufs = append(t.bufs, b)
	t.mu.Unlock()
	return b
}

// JobBuf registers and returns a new event buffer whose emissions are
// stamped with the given job id (unless the emitter already set one), so
// per-job components on a multi-job master tag their whole stream without
// touching each emit site. A nil tracer returns a nil Buf.
func (t *Tracer) JobBuf(job int) *Buf {
	if t == nil {
		return nil
	}
	b := &Buf{t: t, job: job}
	t.mu.Lock()
	t.bufs = append(t.bufs, b)
	t.mu.Unlock()
	return b
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// SetTap installs fn as the synchronous live event tap: every
// subsequent Emit on any of the tracer's buffers invokes fn with the
// stamped event, from the emitting goroutine, before any asynchronous
// subscriber sees it. fn must be fast and must not block — emitters sit
// on hot paths (the master event loop, executor task loops). There is
// one tap slot: installing a tap replaces the previous one, and passing
// nil removes it. Asynchronous consumers that tolerate drops should use
// Subscribe instead. Nil-safe.
func (t *Tracer) SetTap(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.publishLocked(func(f *fanout) {
		if fn == nil {
			f.sync = nil
		} else {
			f.sync = &fn
		}
	})
	t.mu.Unlock()
}

// Events merges every buffer into one stream ordered by virtual time
// (stable, so same-timestamp events keep their per-buffer order). Safe
// to call while components are still emitting: it snapshots each buffer
// under its lock.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := make([]*Buf, len(t.bufs))
	copy(bufs, t.bufs)
	t.mu.Unlock()

	var n int
	for _, b := range bufs {
		b.mu.Lock()
		n += len(b.evs)
		b.mu.Unlock()
	}
	out := make([]Event, 0, n)
	for _, b := range bufs {
		b.mu.Lock()
		out = append(out, b.evs...)
		b.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	bufs := make([]*Buf, len(t.bufs))
	copy(bufs, t.bufs)
	t.mu.Unlock()
	n := 0
	for _, b := range bufs {
		b.mu.Lock()
		n += len(b.evs)
		b.mu.Unlock()
	}
	return n
}

// Buf is one component's event buffer. A Buf's mutex is uncontended in
// steady state (only the owning component appends; the tracer locks it
// briefly to merge), so Emit costs an uncontended lock plus an append. A
// nil *Buf discards events after a single pointer check.
type Buf struct {
	t   *Tracer
	job int // stamped onto events that carry no job id (JobBuf)
	mu  sync.Mutex
	evs []Event
}

// Emit records ev, stamping it with the tracer's virtual clock and — for
// job-scoped buffers — the buffer's job id when the caller left ev.Job
// zero. The caller leaves ev.T zero. Nil-safe.
func (b *Buf) Emit(ev Event) {
	if b == nil {
		return
	}
	ev.T = b.t.clock.Since(b.t.start)
	if ev.Job == 0 {
		ev.Job = b.job
	}
	if c := b.t.sink[ev.Kind].Load(); c != nil {
		c.Add(1)
	}
	b.mu.Lock()
	b.evs = append(b.evs, ev)
	b.mu.Unlock()
	if f := b.t.fan.Load(); f != nil {
		if f.sync != nil {
			(*f.sync)(ev)
		}
		for _, s := range f.subs {
			s.offer(ev)
		}
	}
}
