package obs

import (
	"sync/atomic"
)

// The live-event plane fans every emitted event out to two classes of
// consumer:
//
//   - one synchronous tap (SetTap), invoked inline from the emitting
//     goroutine — the chaos engine depends on this synchrony to inject
//     faults deterministically at the exact emission point;
//   - any number of asynchronous Subscribers, each owning a buffered
//     channel the emitter offers events to without ever blocking: when
//     a subscriber's buffer is full the event is dropped for that
//     subscriber and its drop counter incremented. A slow consumer
//     (an SSE client on a bad link, a stalled padotop) can therefore
//     never stall Emit or hold up the master loop.
//
// The subscriber set is copy-on-write: Subscribe/Close/SetTap build a
// fresh immutable fanout under the tracer's mutex and publish it with
// one atomic store, so the emit path is a single atomic load plus a
// loop over an immutable slice — no lock, no allocation.

// fanout is the immutable live-consumer set published on Tracer.fan.
type fanout struct {
	// sync is the synchronous tap (SetTap); invoked inline before any
	// subscriber offer.
	sync *func(Event)
	// subs are the asynchronous subscribers, offered to in order.
	subs []*Subscriber
}

// Kind masks fit in a uint64; keep the static guarantee that adding
// kinds past 64 breaks the build here rather than silently mis-filtering.
var _ [64 - int(kindCount)]struct{}

// Subscriber is one asynchronous consumer of the live event stream.
// Events are delivered on C() in emission order as seen by each
// emitting goroutine; events arriving while the buffer is full are
// dropped (counted by Dropped), never blocking the emitter.
type Subscriber struct {
	t    *Tracer
	mask uint64 // bit i set = Kind(i) wanted; 0 = all kinds
	ch   chan Event

	drops atomic.Int64
}

// Subscribe registers a live-event subscriber with the given channel
// buffer size (clamped to at least 1) delivering only the listed kinds,
// or every kind when none are given. The subscriber must be Closed when
// done; a nil tracer returns nil, and every Subscriber method is
// nil-safe, so callers on the disabled path need no branches.
func (t *Tracer) Subscribe(buf int, kinds ...Kind) *Subscriber {
	if t == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	var mask uint64
	for _, k := range kinds {
		if k < kindCount {
			mask |= 1 << uint(k)
		}
	}
	s := &Subscriber{t: t, mask: mask, ch: make(chan Event, buf)}
	t.mu.Lock()
	t.publishLocked(func(f *fanout) {
		f.subs = append(f.subs, s)
	})
	t.mu.Unlock()
	return s
}

// C returns the subscriber's event channel. The channel is never closed
// (emitters may still hold a stale fanout for one offer after Close);
// consumers stop by selecting on their own done signal. Nil-safe: a nil
// subscriber returns a nil channel, which blocks forever in a select.
func (s *Subscriber) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many events were discarded because the
// subscriber's buffer was full at offer time. Nil-safe.
func (s *Subscriber) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.drops.Load()
}

// Close detaches the subscriber from the tracer's fan-out. The channel
// is deliberately left open: an emitter that loaded the previous fanout
// may still offer one event after Close returns, and sending on a
// closed channel would panic. Idempotent and nil-safe.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	t.publishLocked(func(f *fanout) {
		kept := f.subs[:0:0]
		for _, sub := range f.subs {
			if sub != s {
				kept = append(kept, sub)
			}
		}
		f.subs = kept
	})
	t.mu.Unlock()
}

// offer delivers ev to the subscriber without blocking, dropping (and
// counting) when the buffer is full or the kind is filtered out.
func (s *Subscriber) offer(ev Event) {
	if s.mask != 0 && s.mask&(1<<uint(ev.Kind)) == 0 {
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.drops.Add(1)
	}
}

// publishLocked clones the current fanout, applies mut to the clone, and
// publishes it — or nil when the result carries no consumers, restoring
// the single-pointer-check fast path on Emit. Caller holds t.mu.
func (t *Tracer) publishLocked(mut func(*fanout)) {
	next := &fanout{}
	if cur := t.fan.Load(); cur != nil {
		next.sync = cur.sync
		next.subs = append([]*Subscriber(nil), cur.subs...)
	}
	mut(next)
	if next.sync == nil && len(next.subs) == 0 {
		t.fan.Store(nil)
		return
	}
	t.fan.Store(next)
}
