package obs

import (
	"sync"
	"testing"
	"time"
)

// drain pulls everything currently buffered on the subscriber.
func drain(s *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev := <-s.C():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestSubscribeDeliversAndFilters(t *testing.T) {
	tr := New()
	b := tr.Buf()

	all := tr.Subscribe(16)
	pushes := tr.Subscribe(16, PushStarted, PushCommitted)
	defer all.Close()
	defer pushes.Close()

	b.Emit(Event{Kind: TaskLaunched, Task: 1})
	b.Emit(Event{Kind: PushStarted, Task: 1})
	b.Emit(Event{Kind: PushCommitted, Task: 1})

	if got := drain(all); len(got) != 3 {
		t.Fatalf("unfiltered subscriber got %d events, want 3", len(got))
	}
	got := drain(pushes)
	if len(got) != 2 {
		t.Fatalf("filtered subscriber got %d events, want 2", len(got))
	}
	for _, ev := range got {
		if ev.Kind != PushStarted && ev.Kind != PushCommitted {
			t.Errorf("filtered subscriber saw %v", ev.Kind)
		}
	}
	if d := all.Dropped(); d != 0 {
		t.Errorf("dropped = %d, want 0", d)
	}
}

// TestSlowSubscriberDropsNotBlocks is the satellite's slow-consumer
// guarantee: a subscriber that never reads its channel costs the
// emitter nothing beyond a failed non-blocking send — every overflow is
// counted, emission latency stays bounded, and other consumers (the
// synchronous tap, healthy subscribers) still see the full stream.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	tr := New()
	b := tr.Buf()

	const buf, total = 4, 1000
	slow := tr.Subscribe(buf) // never read
	defer slow.Close()
	fast := tr.Subscribe(2 * total)
	defer fast.Close()

	start := time.Now()
	for i := 0; i < total; i++ {
		b.Emit(Event{Kind: TaskLaunched, Task: i})
	}
	elapsed := time.Since(start)

	// A blocking send would hang forever; a spinning one would take
	// seconds. 1000 non-blocking offers finish in microseconds — allow
	// three orders of magnitude of CI noise.
	if elapsed > 2*time.Second {
		t.Fatalf("emitting %d events past a stuck subscriber took %v", total, elapsed)
	}
	if d := slow.Dropped(); d != total-buf {
		t.Errorf("slow.Dropped() = %d, want %d", d, total-buf)
	}
	if got := len(drain(fast)); got != total {
		t.Errorf("fast subscriber got %d events, want %d", got, total)
	}
	if d := fast.Dropped(); d != 0 {
		t.Errorf("fast.Dropped() = %d, want 0", d)
	}
}

// TestFanoutConcurrentEmitSubscribe is the satellite's -race hardening
// test: emitters on several goroutines race subscriber add/remove and
// tap replace/clear. The assertions are deliberately weak (no panics,
// no lost events on a wide-open subscriber, tap sees a sane subset);
// the real check is the race detector over the copy-on-write publish.
func TestFanoutConcurrentEmitSubscribe(t *testing.T) {
	tr := New()

	const emitters, perEmitter, churners = 4, 500, 3
	var tapped Counterish
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churn the tap between a live function and nil.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				tr.SetTap(nil)
				return
			default:
			}
			if i%2 == 0 {
				tr.SetTap(func(Event) { tapped.Add(1) })
			} else {
				tr.SetTap(nil)
			}
		}
	}()

	// Churn subscribers: subscribe, drain a little, close.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := tr.Subscribe(8, TaskLaunched)
				for j := 0; j < 4; j++ {
					select {
					case <-s.C():
					default:
					}
				}
				s.Close()
				_ = s.Dropped()
			}
		}()
	}

	var emitWG sync.WaitGroup
	for e := 0; e < emitters; e++ {
		emitWG.Add(1)
		go func(e int) {
			defer emitWG.Done()
			b := tr.Buf()
			for i := 0; i < perEmitter; i++ {
				b.Emit(Event{Kind: TaskLaunched, Exec: "e", Task: i, Attempt: e})
			}
		}(e)
	}
	emitWG.Wait()
	close(stop)
	wg.Wait()

	if n := tr.Len(); n != emitters*perEmitter {
		t.Fatalf("recorded %d events, want %d", n, emitters*perEmitter)
	}
	if got := tapped.Load(); got < 0 || got > int64(emitters*perEmitter) {
		t.Fatalf("tap saw %d events, want between 0 and %d", got, emitters*perEmitter)
	}
}

// TestSetTapCompat locks the PR-2 contract the chaos engine relies on:
// the tap is invoked synchronously from the emitting goroutine, and
// SetTap(nil) removes it.
func TestSetTapCompat(t *testing.T) {
	tr := New()
	b := tr.Buf()

	var got []Event
	tr.SetTap(func(ev Event) { got = append(got, ev) }) // no lock: synchronous means same goroutine
	b.Emit(Event{Kind: PushStarted, Task: 7})
	if len(got) != 1 || got[0].Task != 7 {
		t.Fatalf("tap saw %v, want the emitted push", got)
	}
	tr.SetTap(nil)
	b.Emit(Event{Kind: PushStarted, Task: 8})
	if len(got) != 1 {
		t.Fatalf("tap still live after SetTap(nil): saw %d events", len(got))
	}
}

func TestSubscriberNilSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Subscribe(8, TaskLaunched)
	if s != nil {
		t.Fatal("nil tracer must hand out a nil subscriber")
	}
	if s.C() != nil {
		t.Error("nil subscriber channel must be nil")
	}
	if s.Dropped() != 0 {
		t.Error("nil subscriber drop count must be 0")
	}
	s.Close() // must not panic
	tr.SetTap(func(Event) {})
}

// Counterish is a tiny atomic counter for test tallies (avoids
// importing metrics here just for a tally).
type Counterish struct {
	mu sync.Mutex
	n  int64
}

func (c *Counterish) Add(d int64) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *Counterish) Load() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.n }
