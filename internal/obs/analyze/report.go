package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pado/internal/metrics"
	"pado/internal/obs"
)

// Schema identifies the report JSON layout; bump on breaking changes.
const Schema = "pado.report/v1"

// NamedValue is one counter in the report, in deterministic order.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// ClassShare is one critical-path class total.
type ClassShare struct {
	Class string  `json:"class"`
	NS    int64   `json:"ns"`
	Frac  float64 `json:"frac"`
}

// CritPath is the critical-path section of a report. Segments tile
// [0, TotalNS] exactly, so the critical-path length IS the job
// completion time as seen by the event stream.
type CritPath struct {
	TotalNS  int64        `json:"total_ns"`
	ByClass  []ClassShare `json:"by_class"`
	Segments []Segment    `json:"segments"`
}

// Class returns the total for one class (0 when absent).
func (c CritPath) Class(name string) int64 {
	for _, s := range c.ByClass {
		if s.Class == name {
			return s.NS
		}
	}
	return 0
}

// EvictionCost is the wasted work attributed to one work-destroying
// departure: a container_evicted event or a node_declared_dead
// declaration by the failure detector.
type EvictionCost struct {
	Index         int    `json:"index"` // ordinal among the run's departures
	Exec          string `json:"exec"`
	AtNS          int64  `json:"at_ns"`
	TasksKilled   int    `json:"tasks_killed"`
	ComputeLostNS int64  `json:"compute_lost_ns"`
	BytesLost     int64  `json:"bytes_lost"`
	Stages        []int  `json:"stages,omitempty"` // distinct stages hit
	// Cause is empty for announced evictions; for detector declarations
	// it carries the master's note ("<kind> <cause>").
	Cause string `json:"cause,omitempty"`
}

// Waste is the wasted-work accounting section.
type Waste struct {
	// Evictions lists per-eviction costs, most expensive (by compute
	// lost, then bytes) first. Evictions that destroyed nothing are
	// counted in EvictionsTotal but not listed.
	Evictions []EvictionCost `json:"evictions,omitempty"`
	// EvictionsTotal counts every work-destroying departure — announced
	// container_evicted events plus detector node_declared_dead
	// declarations — including harmless ones.
	EvictionsTotal int `json:"evictions_total"`
	// Eviction-attributed losses (sums over Evictions).
	TasksKilled   int   `json:"tasks_killed"`
	ComputeLostNS int64 `json:"compute_lost_ns"`
	BytesLost     int64 `json:"bytes_lost"`
	// Losses from plain task failures (no eviction involved).
	FailureTasks         int   `json:"failure_tasks"`
	FailureComputeLostNS int64 `json:"failure_compute_lost_ns"`
	// Losses from whole-stage restarts (reserved-container/receiver
	// failures destroy committed stage work wholesale).
	RestartComputeLostNS int64 `json:"restart_compute_lost_ns"`
}

// StageReport summarizes one stage. Timestamps come from the final
// scheduling epoch; counts aggregate every epoch.
type StageReport struct {
	ID          int                  `json:"id"`
	ScheduledNS int64                `json:"scheduled_ns"`
	CompletedNS int64                `json:"completed_ns"` // -1 when never completed
	Restarts    int                  `json:"restarts"`
	Launched    int                  `json:"launched"`
	Relaunched  int                  `json:"relaunched"`
	Failed      int                  `json:"failed"`
	Commits     int                  `json:"commits"`
	PushBytes   int64                `json:"push_bytes"`
	FetchBytes  int64                `json:"fetch_bytes"`
	Latency     metrics.HistSnapshot `json:"latency"`
	P50NS       int64                `json:"p50_ns"`
	P95NS       int64                `json:"p95_ns"`
	MaxNS       int64                `json:"max_ns"`
}

// Straggler is one attempt that ran much slower than its stage median.
type Straggler struct {
	Stage         int     `json:"stage"`
	Frag          int     `json:"frag"`
	Task          int     `json:"task"`
	Attempt       int     `json:"attempt"`
	Exec          string  `json:"exec,omitempty"`
	DurNS         int64   `json:"dur_ns"`
	StageMedianNS int64   `json:"stage_median_ns"`
	Ratio         float64 `json:"ratio"`
}

// ContainerStats counts container lifecycle events.
type ContainerStats struct {
	Up      int `json:"up"`
	Evicted int `json:"evicted"`
	Failed  int `json:"failed"`
	// DeclaredDead counts nodes the failure detector gave up on —
	// unannounced departures recovered without a cluster callback.
	DeclaredDead int `json:"declared_dead,omitempty"`
}

// Detection is one failure-detector declaration paired, when possible,
// with the chaos injection that silenced the node.
type Detection struct {
	Exec string `json:"exec"`
	Note string `json:"note,omitempty"` // "<kind> <cause>" from the master
	AtNS int64  `json:"at_ns"`
	// LatencyNS is the injection→declaration gap when an unannounced
	// chaos fault (kill-silent/hang/gray) targeted the node; -1 when the
	// declaration has no recorded injection to anchor against.
	LatencyNS int64 `json:"latency_ns"`
}

// FailureDetection is the failure-handling-plane section: what the
// heartbeat detector saw and declared, and what the RPC retry/backoff
// policy spent answering flaky destinations. Omitted entirely when the
// run had no detector or breaker activity, keeping detector-free
// reports byte-identical to the prior schema.
type FailureDetection struct {
	Declared []Detection `json:"declared,omitempty"`

	HeartbeatsMissed  int `json:"heartbeats_missed"`
	SuspicionsRaised  int `json:"suspicions_raised"`
	SuspicionsCleared int `json:"suspicions_cleared"`
	BreakerOpens      int `json:"breaker_opens"`

	// Retry/backoff waste bucket, from the run's counters: attempts and
	// wall time the RPC policy burned on retries instead of progress.
	RPCRetries      int64 `json:"rpc_retries"`
	RPCBackoffNS    int64 `json:"rpc_backoff_ns"`
	RPCDeadlineHits int64 `json:"rpc_deadline_hits"`
}

// Cache is the incremental re-execution section: what the run's probe
// against the commit store found and what compute the hits avoided
// (DESIGN.md §14). Omitted entirely when the run had no commit-store
// activity, keeping non-incremental reports byte-identical to the prior
// schema.
type Cache struct {
	// Probes/Hits/Misses count commit-store lookups at submission,
	// stage- and task-level together; Writes counts manifests this run
	// committed back.
	Probes int64 `json:"probes"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
	// StagesSkipped/TasksSkipped count work served from the store
	// instead of launched; ComputeAvoidedTasks is the task count a
	// skipped stage would have run (fragment tasks plus receivers).
	StagesSkipped       int64 `json:"stages_skipped"`
	TasksSkipped        int64 `json:"tasks_skipped"`
	ComputeAvoidedTasks int64 `json:"compute_avoided_tasks"`
	// CAS traffic: chunk reads (skipped-stage fetches, skipped-task
	// pulls) and chunk writes on the commit path.
	CASBytesServed  int64 `json:"cas_bytes_served"`
	CASBytesWritten int64 `json:"cas_bytes_written"`
}

// Report is the analyzer's verdict over one run. All fields are plain
// values or slices in deterministic order, so encoding the same report
// twice yields identical bytes.
type Report struct {
	Schema   string `json:"schema"`
	Engine   string `json:"engine,omitempty"`
	Workload string `json:"workload,omitempty"`
	Rate     string `json:"rate,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Job identifies the analyzed job of a multi-job manager trace (0 =
	// whole stream; omitted from JSON so single-job reports are
	// byte-identical to the pre-multi-job schema).
	Job int `json:"job,omitempty"`
	// Policy names the placement policy that produced the run's plan.
	Policy string `json:"policy,omitempty"`
	// ScaleNSPerMinute maps wall nanoseconds to one paper minute (0
	// when the run had no scale).
	ScaleNSPerMinute int64 `json:"scale_ns_per_minute,omitempty"`

	JCTNS      int64   `json:"jct_ns"`
	JCTMinutes float64 `json:"jct_minutes,omitempty"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Events     int     `json:"events"`

	Containers ContainerStats `json:"containers"`
	Counters   []NamedValue   `json:"counters,omitempty"`

	CritPath CritPath `json:"critical_path"`
	Waste    Waste    `json:"waste"`
	// Detection is present only when the run's failure-handling plane
	// did something worth reporting (see FailureDetection).
	Detection *FailureDetection `json:"detection,omitempty"`
	// Cache is present only when the run touched a commit store.
	Cache      *Cache        `json:"cache,omitempty"`
	Stages     []StageReport `json:"stages"`
	Stragglers []Straggler   `json:"stragglers,omitempty"`
}

// Analyze builds a Report from a merged event stream (Tracer.Events
// order). It never fails: an empty stream yields an empty report.
func Analyze(events []obs.Event, opts Options) *Report {
	if opts.StragglerK <= 0 {
		opts.StragglerK = 2
	}
	if opts.Job > 0 {
		filtered := make([]obs.Event, 0, len(events))
		for _, ev := range events {
			if ev.Job == opts.Job || ev.Job == 0 {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
	}
	m := build(events, opts)

	jct := opts.JCT
	if jct <= 0 {
		jct = m.jobEnd
	}
	policy := opts.Policy
	if policy == "" {
		for _, ev := range events {
			if ev.Kind == obs.PlanCompiled {
				policy = ev.Note
				break
			}
		}
	}
	r := &Report{
		Schema:           Schema,
		Engine:           opts.Engine,
		Workload:         opts.Workload,
		Rate:             opts.Rate,
		Seed:             opts.Seed,
		Job:              opts.Job,
		Policy:           policy,
		ScaleNSPerMinute: int64(opts.Scale.WallPerMinute),
		JCTNS:            int64(jct),
		JCTMinutes:       opts.Scale.Minutes(jct),
		TimedOut:         opts.TimedOut || m.timedOut,
		Events:           m.events,
		Containers: ContainerStats{
			Up:           m.containersUp,
			Evicted:      m.containersEvicted,
			Failed:       m.containersFailed,
			DeclaredDead: len(m.declared),
		},
	}
	if opts.Snapshot != nil {
		r.Counters = countersOf(*opts.Snapshot)
	}

	segs := criticalPath(m)
	r.CritPath = critPathSection(segs)
	r.Waste = wasteSection(m)
	r.Detection = detectionSection(m, opts.Snapshot)
	r.Cache = cacheSection(opts.Snapshot)
	r.Stages, r.Stragglers = stageSection(m, opts.StragglerK)
	return r
}

// detectionSection assembles the failure-handling-plane report, or nil
// when the run shows no detector, suspicion, or retry activity at all.
func detectionSection(m *model, snap *metrics.Snapshot) *FailureDetection {
	d := &FailureDetection{
		HeartbeatsMissed:  m.heartbeatsMissed,
		SuspicionsRaised:  m.suspicionsRaised,
		SuspicionsCleared: m.suspicionsCleared,
		BreakerOpens:      m.breakerOpens,
	}
	if snap != nil {
		d.RPCRetries = snap.Named[metrics.NameRPCRetries]
		d.RPCBackoffNS = snap.Named[metrics.NameRPCBackoffNS]
		d.RPCDeadlineHits = snap.Named[metrics.NameRPCDeadlineHits]
	}
	for _, dr := range m.declared {
		det := Detection{Exec: dr.exec, Note: dr.note, AtNS: int64(dr.t), LatencyNS: -1}
		if at, ok := m.injectedAt[dr.exec]; ok && dr.t >= at {
			det.LatencyNS = int64(dr.t - at)
		}
		d.Declared = append(d.Declared, det)
	}
	if len(d.Declared) == 0 && d.HeartbeatsMissed == 0 && d.SuspicionsRaised == 0 &&
		d.SuspicionsCleared == 0 && d.BreakerOpens == 0 &&
		d.RPCRetries == 0 && d.RPCBackoffNS == 0 && d.RPCDeadlineHits == 0 {
		return nil
	}
	return d
}

// cacheSection assembles the incremental re-execution report from the
// run's counters, or nil when the run never touched a commit store.
func cacheSection(snap *metrics.Snapshot) *Cache {
	if snap == nil {
		return nil
	}
	c := &Cache{
		Probes:              snap.Named[metrics.NameCommitProbes],
		Hits:                snap.Named[metrics.NameCommitHits],
		Misses:              snap.Named[metrics.NameCommitMisses],
		Writes:              snap.Named[metrics.NameCommitWrites],
		StagesSkipped:       snap.Named[metrics.NameStagesSkipped],
		TasksSkipped:        snap.Named[metrics.NameTasksSkipped],
		ComputeAvoidedTasks: snap.Named[metrics.NameComputeAvoidedTasks],
		CASBytesServed:      snap.Named[metrics.NameCASBytesServed],
		CASBytesWritten:     snap.Named[metrics.NameCASBytesWritten],
	}
	if c.Probes == 0 && c.Writes == 0 && c.CASBytesServed == 0 && c.CASBytesWritten == 0 {
		return nil
	}
	return c
}

// sortedAttempts returns every attempt in deterministic order: by
// stage, epoch, frag, task, attempt.
func (m *model) sortedAttempts() []*attempt {
	out := make([]*attempt, 0, len(m.attempts))
	for _, a := range m.attempts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Frag != b.Frag {
			return a.Frag < b.Frag
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Attempt < b.Attempt
	})
	return out
}

func critPathSection(segs []Segment) CritPath {
	cp := CritPath{Segments: segs}
	totals := make(map[string]int64, len(Classes))
	for _, s := range segs {
		totals[s.Class] += s.EndNS - s.StartNS
		if s.EndNS > cp.TotalNS {
			cp.TotalNS = s.EndNS
		}
	}
	for _, c := range Classes {
		share := ClassShare{Class: c, NS: totals[c]}
		if cp.TotalNS > 0 {
			share.Frac = float64(share.NS) / float64(cp.TotalNS)
		}
		cp.ByClass = append(cp.ByClass, share)
	}
	return cp
}

// wasteSection computes per-eviction and per-cause wasted work.
//
// An attempt is "destroyed" when a TaskRelaunched event superseded it.
// Its lost compute is the time from launch until it finished computing
// (if it did) or until it was destroyed (if still running). Destroyed
// attempts never committed, so every byte they pushed was also lost.
// The destruction is attributed to the eviction of the executor the
// attempt was running on; destructions with no matching eviction (task
// errors, invariant-preserving un-commits) land in the failure bucket.
func wasteSection(m *model) Waste {
	w := Waste{EvictionsTotal: len(m.evictions)}

	// Index evictions by executor for attribution lookups.
	byExec := make(map[string][]evictionRec)
	for _, e := range m.evictions {
		byExec[e.exec] = append(byExec[e.exec], e)
	}
	costs := make(map[int]*EvictionCost) // eviction index -> cost
	stageSets := make(map[int]map[int]bool)

	attribute := func(a *attempt, lost time.Duration) {
		// Prefer the eviction of the attempt's own executor inside the
		// attempt's lifetime; fall back to the eviction the relaunch
		// event named (covers races where the launch was missed).
		find := func(exec string, lo, hi time.Duration) (evictionRec, bool) {
			var best evictionRec
			found := false
			for _, e := range byExec[exec] {
				if e.t >= lo && e.t <= hi && (!found || e.t >= best.t) {
					best, found = e, true
				}
			}
			return best, found
		}
		ev, ok := find(a.exec, a.launch, a.relaunch)
		if !ok && a.relaunchExec != "" {
			ev, ok = find(a.relaunchExec, 0, a.relaunch)
		}
		if !ok {
			w.FailureTasks++
			w.FailureComputeLostNS += int64(lost)
			return
		}
		c := costs[ev.index]
		if c == nil {
			c = &EvictionCost{Index: ev.index, Exec: ev.exec, AtNS: int64(ev.t), Cause: ev.cause}
			costs[ev.index] = c
			stageSets[ev.index] = make(map[int]bool)
		}
		c.TasksKilled++
		c.ComputeLostNS += int64(lost)
		c.BytesLost += a.pushBytes
		stageSets[ev.index][a.key.Stage] = true
		w.TasksKilled++
		w.ComputeLostNS += int64(lost)
		w.BytesLost += a.pushBytes
	}

	for _, a := range m.sortedAttempts() {
		if a.relaunch == unseen || a.launch == unseen || a.key.Frag == reservedFrag {
			continue
		}
		end := a.relaunch
		if a.finish != unseen && a.finish < end {
			end = a.finish
		}
		lost := end - a.launch
		if lost < 0 {
			lost = 0
		}
		attribute(a, lost)
	}

	// Whole-stage restarts: fragment attempts of superseded epochs that
	// were not individually destroyed lose their work when the stage is
	// reset (reserved/receiver failures, §3.2.6 recovery).
	for _, a := range m.sortedAttempts() {
		if a.key.Frag == reservedFrag || a.launch == unseen || a.relaunch != unseen {
			continue
		}
		if a.key.Epoch >= m.finalEpoch(a.key.Stage) {
			continue
		}
		cutoff := m.jobEnd
		if next, ok := m.stages[stageKey{a.key.Stage, a.key.Epoch + 1}]; ok && next.sched != unseen {
			cutoff = next.sched
		}
		end := cutoff
		if a.finish != unseen && a.finish < end {
			end = a.finish
		}
		if lost := end - a.launch; lost > 0 {
			w.RestartComputeLostNS += int64(lost)
		}
	}

	w.Evictions = make([]EvictionCost, 0, len(costs))
	for idx, c := range costs {
		for s := range stageSets[idx] {
			c.Stages = append(c.Stages, s)
		}
		sort.Ints(c.Stages)
		w.Evictions = append(w.Evictions, *c)
	}
	sort.Slice(w.Evictions, func(i, j int) bool {
		a, b := w.Evictions[i], w.Evictions[j]
		if a.ComputeLostNS != b.ComputeLostNS {
			return a.ComputeLostNS > b.ComputeLostNS
		}
		if a.BytesLost != b.BytesLost {
			return a.BytesLost > b.BytesLost
		}
		return a.Index < b.Index
	})
	return w
}

// maxStragglers caps the straggler list so reports stay small on
// pathological runs.
const maxStragglers = 50

func stageSection(m *model, k float64) ([]StageReport, []Straggler) {
	ids := make([]int, 0, len(m.maxEpoch))
	for id := range m.maxEpoch {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var stages []StageReport
	var stragglers []Straggler
	for _, id := range ids {
		final := m.finalEpoch(id)
		sr := StageReport{ID: id, Restarts: final - 1, ScheduledNS: -1, CompletedNS: -1}
		if s, ok := m.stages[stageKey{id, final}]; ok {
			sr.ScheduledNS = int64(s.sched)
			sr.CompletedNS = int64(s.complete)
		}
		var hist metrics.Histogram
		type sample struct {
			a   *attempt
			dur time.Duration
		}
		var samples []sample
		for e := 1; e <= final; e++ {
			s, ok := m.stages[stageKey{id, e}]
			if !ok {
				continue
			}
			sr.Launched += s.launched
			sr.Relaunched += s.relaunched
			sr.Failed += s.failed
			sr.Commits += s.commits
			sr.PushBytes += s.pushBytes
			sr.FetchBytes += s.fetchBytes
			for _, a := range m.byStage[stageKey{id, e}] {
				if a.key.Frag == reservedFrag || a.launch == unseen || a.finish == unseen {
					continue
				}
				d := a.finish - a.launch
				if d < 0 {
					d = 0
				}
				hist.ObserveDuration(d)
				samples = append(samples, sample{a, d})
			}
		}
		sr.Latency = hist.Snapshot()
		sr.P50NS = sr.Latency.Quantile(0.5)
		sr.P95NS = sr.Latency.Quantile(0.95)
		sr.MaxNS = sr.Latency.Max
		stages = append(stages, sr)

		// Straggler detection: attempts slower than k× the stage median.
		if len(samples) >= 4 {
			durs := make([]time.Duration, len(samples))
			for i, s := range samples {
				durs[i] = s.dur
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			median := durs[len(durs)/2]
			if median > 0 {
				sort.Slice(samples, func(i, j int) bool {
					if samples[i].dur != samples[j].dur {
						return samples[i].dur > samples[j].dur
					}
					return lessKey(samples[i].a.key, samples[j].a.key)
				})
				for _, s := range samples {
					ratio := float64(s.dur) / float64(median)
					if ratio <= k {
						break // sorted descending; nothing further qualifies
					}
					stragglers = append(stragglers, Straggler{
						Stage: s.a.key.Stage, Frag: s.a.key.Frag, Task: s.a.key.Task,
						Attempt: s.a.key.Attempt, Exec: s.a.exec,
						DurNS: int64(s.dur), StageMedianNS: int64(median), Ratio: ratio,
					})
				}
			}
		}
	}
	sort.Slice(stragglers, func(i, j int) bool {
		if stragglers[i].Ratio != stragglers[j].Ratio {
			return stragglers[i].Ratio > stragglers[j].Ratio
		}
		a := attemptKey{stragglers[i].Stage, 0, stragglers[i].Frag, stragglers[i].Task, stragglers[i].Attempt}
		b := attemptKey{stragglers[j].Stage, 0, stragglers[j].Frag, stragglers[j].Task, stragglers[j].Attempt}
		return lessKey(a, b)
	})
	if len(stragglers) > maxStragglers {
		stragglers = stragglers[:maxStragglers]
	}
	return stages, stragglers
}

func lessKey(a, b attemptKey) bool {
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Frag != b.Frag {
		return a.Frag < b.Frag
	}
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	return a.Attempt < b.Attempt
}

func countersOf(s metrics.Snapshot) []NamedValue {
	out := []NamedValue{
		{metrics.NameOriginalTasks, s.OriginalTasks},
		{metrics.NameRelaunchedTasks, s.RelaunchedTasks},
		{metrics.NameEvictions, s.Evictions},
		{metrics.NameBytesPushed, s.BytesPushed},
		{metrics.NameBytesFetched, s.BytesFetched},
		{metrics.NameBytesCheckpointed, s.BytesCheckpointed},
		{metrics.NameCacheHits, s.CacheHits},
		{metrics.NameCacheMisses, s.CacheMisses},
	}
	names := make([]string, 0, len(s.Named))
	for name := range s.Named {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, NamedValue{name, s.Named[name]})
	}
	return out
}

// WriteJSON writes the report as indented, deterministic JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Save writes the report JSON to path.
func (r *Report) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a report JSON from path.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// dur formats nanoseconds for humans.
func dur(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

// kb formats bytes for humans.
func kb(b int64) string {
	switch {
	case b >= 10<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 10<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// WriteText renders the report for terminals: run identity, critical
// path attribution, the most expensive evictions, per-stage latency
// summaries, and stragglers.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	min := func(ns int64) string {
		if r.ScaleNSPerMinute <= 0 {
			return dur(ns)
		}
		return fmt.Sprintf("%s (%.2f paper-min)", dur(ns), float64(ns)/float64(r.ScaleNSPerMinute))
	}

	policy := ""
	if r.Policy != "" {
		policy = " policy=" + r.Policy
	}
	job := ""
	if r.Job > 0 {
		job = fmt.Sprintf(" job=%d", r.Job)
	}
	if err := p("report %s: engine=%s workload=%s rate=%s seed=%d%s%s\n",
		r.Schema, r.Engine, r.Workload, r.Rate, r.Seed, job, policy); err != nil {
		return err
	}
	timedOut := ""
	if r.TimedOut {
		timedOut = " TIMED OUT"
	}
	declared := ""
	if r.Containers.DeclaredDead > 0 {
		declared = fmt.Sprintf(", %d declared dead", r.Containers.DeclaredDead)
	}
	if err := p("jct: %s%s; %d events; containers: %d up, %d evicted, %d failed%s\n",
		min(r.JCTNS), timedOut, r.Events, r.Containers.Up, r.Containers.Evicted, r.Containers.Failed, declared); err != nil {
		return err
	}

	if err := p("critical path: %s in %d segments\n", min(r.CritPath.TotalNS), len(r.CritPath.Segments)); err != nil {
		return err
	}
	for _, c := range r.CritPath.ByClass {
		if err := p("  %-9s %5.1f%%  %s\n", c.Class, c.Frac*100, dur(c.NS)); err != nil {
			return err
		}
	}

	// Longest segments show where the time concentrated.
	segs := append([]Segment(nil), r.CritPath.Segments...)
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Dur() > segs[j].Dur() })
	n := len(segs)
	if n > 8 {
		n = 8
	}
	if n > 0 {
		if err := p("longest segments:\n"); err != nil {
			return err
		}
	}
	for _, s := range segs[:n] {
		loc := fmt.Sprintf("stage %d", s.Stage)
		if s.Task >= 0 {
			loc += fmt.Sprintf(" task %d/%d attempt %d", s.Frag, s.Task, s.Attempt)
		}
		exec := ""
		if s.Exec != "" {
			exec = " on " + s.Exec
		}
		if err := p("  %9s  %-9s %s%s (%s)\n", dur(s.EndNS-s.StartNS), s.Class, loc, exec, s.Note); err != nil {
			return err
		}
	}

	wa := r.Waste
	if err := p("waste: %d/%d evictions destroyed work: %d tasks, %s compute, %s pushed\n",
		len(wa.Evictions), wa.EvictionsTotal, wa.TasksKilled, dur(wa.ComputeLostNS), kb(wa.BytesLost)); err != nil {
		return err
	}
	for i, e := range wa.Evictions {
		if i == 10 {
			if err := p("  ... %d more\n", len(wa.Evictions)-10); err != nil {
				return err
			}
			break
		}
		cause := ""
		if e.Cause != "" {
			cause = " (declared dead: " + e.Cause + ")"
		}
		if err := p("  #%-3d %-6s @ %9s: %2d tasks, %9s compute, %8s, stages %v%s\n",
			e.Index, e.Exec, dur(e.AtNS), e.TasksKilled, dur(e.ComputeLostNS), kb(e.BytesLost), e.Stages, cause); err != nil {
			return err
		}
	}
	if wa.FailureTasks > 0 || wa.RestartComputeLostNS > 0 {
		if err := p("  non-eviction waste: %d failed tasks (%s), stage restarts %s\n",
			wa.FailureTasks, dur(wa.FailureComputeLostNS), dur(wa.RestartComputeLostNS)); err != nil {
			return err
		}
	}

	if d := r.Detection; d != nil {
		if err := p("detection: %d declared dead; suspicions %d raised / %d cleared; %d heartbeats missed; %d breaker opens\n",
			len(d.Declared), d.SuspicionsRaised, d.SuspicionsCleared, d.HeartbeatsMissed, d.BreakerOpens); err != nil {
			return err
		}
		for _, decl := range d.Declared {
			lat := "no injection recorded"
			if decl.LatencyNS >= 0 {
				lat = dur(decl.LatencyNS) + " after injection"
			}
			if err := p("  %-6s declared dead @ %9s (%s): %s\n",
				decl.Exec, dur(decl.AtNS), decl.Note, lat); err != nil {
				return err
			}
		}
		if d.RPCRetries > 0 || d.RPCDeadlineHits > 0 || d.RPCBackoffNS > 0 {
			if err := p("  rpc waste: %d retries, %d deadline hits, %s in backoff\n",
				d.RPCRetries, d.RPCDeadlineHits, dur(d.RPCBackoffNS)); err != nil {
				return err
			}
		}
	}

	if c := r.Cache; c != nil {
		if err := p("cache: %d/%d probes hit; skipped %d stages, %d tasks (%d tasks of compute avoided)\n",
			c.Hits, c.Probes, c.StagesSkipped, c.TasksSkipped, c.ComputeAvoidedTasks); err != nil {
			return err
		}
		if err := p("  commit store: %s served, %s written, %d manifests committed\n",
			kb(c.CASBytesServed), kb(c.CASBytesWritten), c.Writes); err != nil {
			return err
		}
	}

	if err := p("stages:\n  %5s %9s %9s %8s %6s %10s %6s %9s %9s %9s\n",
		"stage", "sched", "done", "restarts", "tasks", "relaunched", "n", "p50", "p95", "max"); err != nil {
		return err
	}
	for _, s := range r.Stages {
		done := "-"
		if s.CompletedNS >= 0 {
			done = dur(s.CompletedNS)
		}
		sched := "-"
		if s.ScheduledNS >= 0 {
			sched = dur(s.ScheduledNS)
		}
		if err := p("  %5d %9s %9s %8d %6d %10d %6d %9s %9s %9s\n",
			s.ID, sched, done, s.Restarts, s.Launched, s.Relaunched,
			s.Latency.Count, dur(s.P50NS), dur(s.P95NS), dur(s.MaxNS)); err != nil {
			return err
		}
	}

	if len(r.Stragglers) > 0 {
		if err := p("stragglers (vs. stage median):\n"); err != nil {
			return err
		}
	}
	for i, s := range r.Stragglers {
		if i == 10 {
			if err := p("  ... %d more\n", len(r.Stragglers)-10); err != nil {
				return err
			}
			break
		}
		if err := p("  stage %d task %d/%d attempt %d: %s = %.1fx median %s on %s\n",
			s.Stage, s.Frag, s.Task, s.Attempt, dur(s.DurNS), s.Ratio, dur(s.StageMedianNS), s.Exec); err != nil {
			return err
		}
	}
	return nil
}
