// Package analyze reconstructs a causal task graph from a recorded obs
// event stream and explains where a job's completion time went.
//
// The paper's §5 evaluation reasons about job-completion time under
// eviction storms; "Do the Hard Stuff First" (Graphene) shows that
// critical-path analysis is the right lens for DAG runtimes. This
// package computes, from events alone:
//
//   - the job's critical path with per-segment attribution (compute vs.
//     push vs. fetch vs. scheduling gap vs. relaunch wait), walked
//     backward from the last stage completion through the attempt that
//     gated it, the eviction that destroyed its predecessor, the stage
//     schedule that admitted it, and so on to job start;
//   - wasted-work accounting: compute time and bytes destroyed by each
//     eviction, attributed to the specific container_evicted event that
//     caused them, so runs can rank their most expensive evictions;
//   - per-stage task-latency distributions (fixed-bucket histograms
//     from internal/metrics) and straggler detection (attempts slower
//     than k× their stage median).
//
// The analysis is engine-agnostic: the Pado runtime and the sparklike
// baselines emit the same event schema, so both produce comparable
// reports — which is what cmd/padoreport diffs to track the benchmark
// trajectory.
package analyze

import (
	"sort"
	"strings"
	"time"

	"pado/internal/metrics"
	"pado/internal/obs"
)

// unseen marks a timestamp that never occurred.
const unseen = time.Duration(-1)

// Options parameterizes Analyze.
type Options struct {
	// StageParents maps each stage id to its parent stage ids (from
	// core.PhysStage.Parents or sparklike.SPlan). When nil, the walker
	// falls back to "latest completed stage" as the causal parent.
	StageParents map[int][]int

	// StragglerK flags attempts slower than K× their stage's median
	// compute time. Default 2.
	StragglerK float64

	// Scale, when non-zero, lets report renderings print paper minutes.
	Scale ScaleInfo

	// JCT is the measured job completion time; when zero the last
	// stage-complete (or last event) timestamp is used.
	JCT      time.Duration
	TimedOut bool

	// Job, when positive, restricts analysis to one job of a multi-job
	// manager trace: only events tagged with that job id, plus
	// fleet-wide events (Job 0, container lifecycle), are analyzed.
	// Zero analyzes the whole stream — single-job traces and fleet
	// aggregates — unchanged.
	Job int

	// Run identity, embedded in the report for padoreport diffs.
	Engine   string
	Workload string
	Rate     string
	Seed     int64
	// Policy is the placement policy that produced the run's plan. When
	// empty, Analyze falls back to the plan_compiled event's note, so
	// traces remain self-describing even without caller-provided
	// identity.
	Policy string

	// Snapshot, when non-nil, embeds the run's counters in the report.
	Snapshot *metrics.Snapshot
}

// ScaleInfo mirrors vtime.Scale without importing it into report JSON.
type ScaleInfo struct {
	WallPerMinute time.Duration
}

// Minutes converts a wall duration to paper minutes (0 when unset).
func (s ScaleInfo) Minutes(d time.Duration) float64 {
	if s.WallPerMinute <= 0 {
		return 0
	}
	return float64(d) / float64(s.WallPerMinute)
}

// attemptKey identifies one task attempt within one stage scheduling
// epoch. Epoch disambiguates Pado stage restarts, which reset attempt
// numbering (events do not carry the runtime's internal generation).
type attemptKey struct {
	Stage, Epoch, Frag, Task, Attempt int
}

// attempt accumulates one task attempt's lifecycle timestamps.
type attempt struct {
	key  attemptKey
	exec string

	launch    time.Duration
	finish    time.Duration // compute done (TaskFinished)
	pushStart time.Duration
	commit    time.Duration
	failed    time.Duration
	pushBytes int64

	// Destruction: set when a TaskRelaunched event superseded this
	// attempt (the relaunch carries Attempt = this attempt + 1).
	relaunch     time.Duration
	relaunchExec string // evicted container on Pado eviction relaunches
	relaunchNote string
}

func newAttempt(k attemptKey) *attempt {
	return &attempt{key: k, launch: unseen, finish: unseen, pushStart: unseen,
		commit: unseen, failed: unseen, relaunch: unseen}
}

// stageKey identifies one scheduling epoch of one stage.
type stageKey struct {
	ID, Epoch int
}

// stageRec accumulates one stage epoch's control-plane timestamps.
type stageRec struct {
	key           stageKey
	sched         time.Duration
	complete      time.Duration
	receiverReady time.Duration // last ReceiverReady of the epoch

	launched   int
	relaunched int
	failed     int
	pushBytes  int64
	fetchBytes int64
	commits    int
}

// span is one [start, end] interval on an executor.
type span struct {
	start, end time.Duration
	bytes      int64
}

// evictionRec is one work-destroying departure: a container_evicted
// event (announced) or a node_declared_dead event (the failure detector
// giving up on a silent node). Both destroy in-flight attempts the same
// way, so waste attribution treats them uniformly; cause distinguishes
// them in the report.
type evictionRec struct {
	index int // ordinal among departures, for stable identity
	exec  string
	t     time.Duration
	cause string // "" for announced evictions, else the declaration note
}

// declRec is one node_declared_dead event.
type declRec struct {
	exec string
	t    time.Duration
	note string // "<kind> <cause>" from the master
}

// unannounced fault ops whose chaos_injected events mark the moment a
// node silently broke (mirrors chaos.OpKillSilent/OpHang/OpGray without
// importing the chaos package).
var unannouncedOps = map[string]bool{"kill-silent": true, "hang": true, "gray": true}

// causeRec is one restart cause: a reserved-container failure or a
// receiver (reserved task) failure.
type causeRec struct {
	t    time.Duration
	note string
}

// fetchKey pairs FetchStarted/FetchDone events.
type fetchKey struct {
	exec  string
	stage int
	frag  int
	task  int
	note  string
}

// model is the reconstructed causal task graph.
type model struct {
	opts Options

	attempts map[attemptKey]*attempt
	byStage  map[stageKey][]*attempt // insertion order = event order

	stages    map[stageKey]*stageRec
	stageKeys []stageKey // sorted at finish()
	maxEpoch  map[int]int

	evictions  []evictionRec
	causes     []causeRec // restart causes, in time order
	fetchSpans map[string][]span
	openFetch  map[fetchKey]time.Duration

	// Failure-handling plane: detector declarations, the unannounced
	// chaos injections they should answer, and heartbeat/breaker tallies.
	declared          []declRec
	injectedAt        map[string]time.Duration // target -> first unannounced injection
	heartbeatsMissed  int
	suspicionsRaised  int
	suspicionsCleared int
	breakerOpens      int

	containersUp      int
	containersEvicted int // announced container_evicted events only
	containersFailed  int
	timedOut          bool
	events            int
	lastT             time.Duration
	jobEnd            time.Duration // last StageComplete (or lastT)
}

func (m *model) attempt(k attemptKey) *attempt {
	a, ok := m.attempts[k]
	if !ok {
		a = newAttempt(k)
		m.attempts[k] = a
		sk := stageKey{k.Stage, k.Epoch}
		m.byStage[sk] = append(m.byStage[sk], a)
	}
	return a
}

func (m *model) stage(sk stageKey) *stageRec {
	s, ok := m.stages[sk]
	if !ok {
		s = &stageRec{key: sk, sched: unseen, complete: unseen, receiverReady: unseen}
		m.stages[sk] = s
	}
	return s
}

// build replays the event stream into the causal model. Events must be
// in merged (virtual-time) order, as returned by Tracer.Events.
func build(events []obs.Event, opts Options) *model {
	m := &model{
		opts:       opts,
		attempts:   make(map[attemptKey]*attempt),
		byStage:    make(map[stageKey][]*attempt),
		stages:     make(map[stageKey]*stageRec),
		maxEpoch:   make(map[int]int),
		fetchSpans: make(map[string][]span),
		openFetch:  make(map[fetchKey]time.Duration),
		injectedAt: make(map[string]time.Duration),
	}
	m.events = len(events)

	epochOf := func(stage int) int {
		if e := m.maxEpoch[stage]; e > 0 {
			return e
		}
		// Events can precede the first StageScheduled only in synthetic
		// streams; fold them into epoch 1.
		return 1
	}

	for _, ev := range events {
		if ev.T > m.lastT {
			m.lastT = ev.T
		}
		switch ev.Kind {
		case obs.StageScheduled:
			m.maxEpoch[ev.Stage]++
			s := m.stage(stageKey{ev.Stage, m.maxEpoch[ev.Stage]})
			s.sched = ev.T

		case obs.StageComplete:
			s := m.stage(stageKey{ev.Stage, epochOf(ev.Stage)})
			s.complete = ev.T
			if ev.T > m.jobEnd {
				m.jobEnd = ev.T
			}

		case obs.ReceiverReady:
			s := m.stage(stageKey{ev.Stage, epochOf(ev.Stage)})
			if ev.T > s.receiverReady {
				s.receiverReady = ev.T
			}

		case obs.TaskLaunched:
			k := attemptKey{ev.Stage, epochOf(ev.Stage), ev.Frag, ev.Task, ev.Attempt}
			a := m.attempt(k)
			if a.launch == unseen {
				a.launch = ev.T
			}
			if ev.Exec != "" {
				a.exec = ev.Exec
			}
			m.stage(stageKey{ev.Stage, k.Epoch}).launched++

		case obs.TaskFinished:
			k := attemptKey{ev.Stage, epochOf(ev.Stage), ev.Frag, ev.Task, ev.Attempt}
			a := m.attempt(k)
			if a.finish == unseen {
				a.finish = ev.T
			}
			if a.exec == "" && ev.Exec != "" {
				a.exec = ev.Exec
			}

		case obs.TaskRelaunched:
			// Attempt carries the NEW attempt number; the destroyed
			// attempt is Attempt-1.
			sk := stageKey{ev.Stage, epochOf(ev.Stage)}
			m.stage(sk).relaunched++
			if ev.Attempt > 0 {
				prev := m.attempt(attemptKey{ev.Stage, sk.Epoch, ev.Frag, ev.Task, ev.Attempt - 1})
				if prev.relaunch == unseen {
					prev.relaunch = ev.T
					prev.relaunchExec = ev.Exec
					prev.relaunchNote = ev.Note
				}
			}

		case obs.TaskFailed:
			sk := stageKey{ev.Stage, epochOf(ev.Stage)}
			m.stage(sk).failed++
			a := m.attempt(attemptKey{ev.Stage, sk.Epoch, ev.Frag, ev.Task, ev.Attempt})
			if a.failed == unseen {
				a.failed = ev.T
			}
			if ev.Frag == obs.ReservedFrag {
				m.causes = append(m.causes, causeRec{t: ev.T, note: "receiver failure"})
			}

		case obs.PushStarted:
			k := attemptKey{ev.Stage, epochOf(ev.Stage), ev.Frag, ev.Task, ev.Attempt}
			a := m.attempt(k)
			if a.pushStart == unseen {
				a.pushStart = ev.T
			}
			a.pushBytes += ev.Bytes
			m.stage(stageKey{ev.Stage, k.Epoch}).pushBytes += ev.Bytes

		case obs.PushCommitted:
			k := attemptKey{ev.Stage, epochOf(ev.Stage), ev.Frag, ev.Task, ev.Attempt}
			a := m.attempt(k)
			if a.commit == unseen {
				a.commit = ev.T
			}
			if a.exec == "" && ev.Exec != "" {
				a.exec = ev.Exec
			}
			m.stage(stageKey{ev.Stage, k.Epoch}).commits++

		case obs.FetchStarted:
			fk := fetchKey{ev.Exec, ev.Stage, ev.Frag, ev.Task, ev.Note}
			m.openFetch[fk] = ev.T

		case obs.FetchDone:
			fk := fetchKey{ev.Exec, ev.Stage, ev.Frag, ev.Task, ev.Note}
			if start, ok := m.openFetch[fk]; ok {
				delete(m.openFetch, fk)
				m.fetchSpans[ev.Exec] = append(m.fetchSpans[ev.Exec],
					span{start: start, end: ev.T, bytes: ev.Bytes})
			}
			// Fetch events carry the PARENT stage id; charge the bytes
			// there, matching the timeline exporter.
			m.stage(stageKey{ev.Stage, epochOf(ev.Stage)}).fetchBytes += ev.Bytes

		case obs.ContainerUp:
			m.containersUp++

		case obs.ContainerEvicted:
			m.containersEvicted++
			m.evictions = append(m.evictions, evictionRec{
				index: len(m.evictions), exec: ev.Exec, t: ev.T})

		case obs.ContainerFailed:
			m.containersFailed++
			m.causes = append(m.causes, causeRec{t: ev.T, note: "container " + ev.Exec + " failed"})

		case obs.NodeDeclaredDead:
			m.declared = append(m.declared, declRec{exec: ev.Exec, t: ev.T, note: ev.Note})
			// The declaration destroys the node's in-flight attempts just
			// like an announced eviction; join the attribution index.
			m.evictions = append(m.evictions, evictionRec{
				index: len(m.evictions), exec: ev.Exec, t: ev.T, cause: ev.Note})
			// A reserved node declared dead restarts its stages (§3.2.6),
			// so it is also a legitimate restart cause.
			if strings.HasPrefix(ev.Note, "reserved") {
				m.causes = append(m.causes, causeRec{t: ev.T, note: "node " + ev.Exec + " declared dead"})
			}

		case obs.ChaosInjected:
			// record() notes are "<ruleID> <op> <detail>"; unannounced ops
			// timestamp when a node silently broke, anchoring detection
			// latency.
			if f := strings.Fields(ev.Note); len(f) >= 2 && unannouncedOps[f[1]] && ev.Exec != "" {
				if _, ok := m.injectedAt[ev.Exec]; !ok {
					m.injectedAt[ev.Exec] = ev.T
				}
			}

		case obs.HeartbeatMissed:
			m.heartbeatsMissed++
		case obs.SuspicionRaised:
			m.suspicionsRaised++
		case obs.SuspicionCleared:
			m.suspicionsCleared++
		case obs.BreakerOpened:
			m.breakerOpens++

		case obs.JobTimedOut:
			m.timedOut = true
		}
	}

	if m.jobEnd == 0 {
		m.jobEnd = m.lastT
	}
	m.stageKeys = make([]stageKey, 0, len(m.stages))
	for sk := range m.stages {
		m.stageKeys = append(m.stageKeys, sk)
	}
	sort.Slice(m.stageKeys, func(i, j int) bool {
		a, b := m.stageKeys[i], m.stageKeys[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Epoch < b.Epoch
	})
	for _, spans := range m.fetchSpans {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	}
	return m
}

// finalEpoch returns the last scheduling epoch of a stage (0 if never
// scheduled).
func (m *model) finalEpoch(id int) int { return m.maxEpoch[id] }

// latestCompleteBefore returns the stage epoch with the latest
// StageComplete at or before t, excluding excludeID. Deterministic:
// scans sorted stage keys.
func (m *model) latestCompleteBefore(t time.Duration, excludeID int) (stageKey, time.Duration, bool) {
	best := unseen
	var bestKey stageKey
	for _, sk := range m.stageKeys {
		if sk.ID == excludeID {
			continue
		}
		s := m.stages[sk]
		if s.complete != unseen && s.complete <= t && s.complete > best {
			best = s.complete
			bestKey = sk
		}
	}
	return bestKey, best, best != unseen
}

// latestCompleteOf returns the latest StageComplete of one stage at or
// before t, across its epochs.
func (m *model) latestCompleteOf(id int, t time.Duration) (stageKey, time.Duration, bool) {
	best := unseen
	var bestKey stageKey
	for e := 1; e <= m.finalEpoch(id); e++ {
		s, ok := m.stages[stageKey{id, e}]
		if !ok || s.complete == unseen || s.complete > t {
			continue
		}
		if s.complete > best {
			best = s.complete
			bestKey = s.key
		}
	}
	return bestKey, best, best != unseen
}

// latestCauseBefore returns the latest restart cause at or before t.
func (m *model) latestCauseBefore(t time.Duration) (causeRec, bool) {
	var best causeRec
	found := false
	for _, c := range m.causes {
		if c.t <= t && (!found || c.t >= best.t) {
			best, found = c, true
		}
	}
	return best, found
}

// fetchSpansIn returns exec's completed fetch spans clipped to
// [from, to], merged so they never overlap, in increasing time order.
func (m *model) fetchSpansIn(exec string, from, to time.Duration) []span {
	var out []span
	for _, s := range m.fetchSpans[exec] {
		if s.end <= from || s.start >= to {
			continue
		}
		c := s
		if c.start < from {
			c.start = from
		}
		if c.end > to {
			c.end = to
		}
		if len(out) > 0 && c.start <= out[len(out)-1].end {
			if c.end > out[len(out)-1].end {
				out[len(out)-1].end = c.end
			}
			out[len(out)-1].bytes += c.bytes
			continue
		}
		out = append(out, c)
	}
	return out
}
