package analyze

import (
	"time"
)

// Segment classes: where a slice of the critical path's wall time went.
const (
	ClassCompute  = "compute"  // a task (or receiver) was executing
	ClassPush     = "push"     // an output was escaping to receivers
	ClassFetch    = "fetch"    // an input was being transferred
	ClassSched    = "sched"    // scheduling gap: queueing, receiver setup, stage handoff
	ClassRelaunch = "relaunch" // waiting out an eviction: requeue + destroyed work
)

// Classes lists the segment classes in canonical order.
var Classes = []string{ClassCompute, ClassPush, ClassFetch, ClassSched, ClassRelaunch}

// Segment is one contiguous slice of the critical path.
type Segment struct {
	Class   string `json:"class"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Stage   int    `json:"stage"`
	Frag    int    `json:"frag"`
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
	Exec    string `json:"exec,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Dur returns the segment's duration.
func (s Segment) Dur() time.Duration { return time.Duration(s.EndNS - s.StartNS) }

// walker performs the backward causal walk. It maintains the invariant
// that w.t is the start of the last emitted segment, so the emitted
// segments tile [0, jobEnd] exactly.
type walker struct {
	m     *model
	t     time.Duration
	segs  []Segment // in reverse time order
	steps int
}

const maxWalkSteps = 100_000

// seg emits one segment ending at the walker's current time and starting
// at start (clamped into [0, w.t]), then moves the walker to start.
func (w *walker) seg(start time.Duration, class string, at attemptKey, exec, note string) {
	if start < 0 {
		start = 0
	}
	if start > w.t {
		start = w.t
	}
	if start < w.t {
		w.segs = append(w.segs, Segment{
			Class:   class,
			StartNS: int64(start),
			EndNS:   int64(w.t),
			Stage:   at.Stage,
			Frag:    at.Frag,
			Task:    at.Task,
			Attempt: at.Attempt,
			Exec:    exec,
			Note:    note,
		})
	}
	w.t = start
}

func (w *walker) bail(note string) {
	w.seg(0, ClassSched, attemptKey{Stage: -1, Frag: -1, Task: -1}, "", note)
}

func (w *walker) budget() bool {
	w.steps++
	return w.steps <= maxWalkSteps
}

// criticalPath walks backward from the job's last stage completion and
// returns the segments in forward time order, tiling [0, end] exactly.
func criticalPath(m *model) []Segment {
	w := &walker{m: m, t: m.jobEnd}
	// The stage whose completion defines job end.
	var last stageKey
	lastT := unseen
	for _, sk := range m.stageKeys {
		s := m.stages[sk]
		if s.complete != unseen && s.complete >= lastT {
			last, lastT = sk, s.complete
		}
	}
	if lastT == unseen {
		// No stage ever completed (timeout/abort): attribute everything
		// to one unexplained segment.
		w.bail("no_stage_completed")
	} else {
		w.seg(lastT, ClassSched, attemptKey{Stage: last.ID, Frag: -1, Task: -1}, "", "drain")
		w.explainStageDone(last)
	}
	// Reverse into forward order.
	for i, j := 0, len(w.segs)-1; i < j; i, j = i+1, j-1 {
		w.segs[i], w.segs[j] = w.segs[j], w.segs[i]
	}
	return w.segs
}

// explainStageDone explains why stage sk completed at w.t.
func (w *walker) explainStageDone(sk stageKey) {
	if !w.budget() {
		w.bail("walk_truncated")
		return
	}
	m := w.m

	// Reserved-root stages complete when their last receiver finalizes.
	var rAtt *attempt
	rT := unseen
	var cAtt *attempt
	cT := unseen
	var fAtt *attempt
	fT := unseen
	for _, a := range m.byStage[sk] {
		if a.finish != unseen && a.finish <= w.t {
			if a.key.Frag == reservedFrag {
				if a.finish > rT {
					rAtt, rT = a, a.finish
				}
			} else if a.finish > fT {
				fAtt, fT = a, a.finish
			}
		}
		if a.commit != unseen && a.commit <= w.t && a.key.Frag != reservedFrag {
			if a.commit > cT {
				cAtt, cT = a, a.commit
			}
		}
	}

	if rAtt != nil {
		// Receiver finalize gated stage completion.
		w.seg(rT, ClassCompute, rAtt.key, rAtt.exec, "finalize")
		// What gated the receiver: the last committed fragment output,
		// or (pull mode / broadcast-input stages) its last fetch.
		spans := m.fetchSpansIn(rAtt.exec, launchOr(rAtt, 0), w.t)
		var lastFetch span
		haveFetch := false
		if len(spans) > 0 {
			lastFetch = spans[len(spans)-1]
			haveFetch = true
		}
		if cAtt != nil && (!haveFetch || cT >= lastFetch.end) {
			w.seg(cT, ClassCompute, rAtt.key, rAtt.exec, "receiver_merge")
			w.explainCommit(cAtt)
			return
		}
		if haveFetch {
			w.seg(lastFetch.end, ClassCompute, rAtt.key, rAtt.exec, "receiver_merge")
			w.seg(lastFetch.start, ClassFetch, rAtt.key, rAtt.exec, "receiver_pull")
			w.seg(launchOr(rAtt, 0), ClassCompute, rAtt.key, rAtt.exec, "receiver")
			w.explainTaskStart(rAtt)
			return
		}
		w.seg(launchOr(rAtt, 0), ClassCompute, rAtt.key, rAtt.exec, "receiver")
		w.explainTaskStart(rAtt)
		return
	}

	// No receivers: terminal-transient Pado stages and sparklike stages.
	if cAtt != nil && cT >= fT {
		w.seg(cT, ClassSched, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "collect")
		w.explainCommit(cAtt)
		return
	}
	if fAtt != nil {
		w.seg(fT, ClassSched, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "stage_done")
		w.explainRun(fAtt, fT)
		w.explainTaskStart(fAtt)
		return
	}
	// Nothing attributable inside the stage.
	s := w.m.stages[sk]
	if s != nil && s.sched != unseen {
		w.seg(s.sched, ClassSched, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "empty_stage")
		w.explainStageSched(sk)
		return
	}
	w.bail("unexplained_stage")
}

// explainCommit explains an attempt's commit at w.t: the push before it,
// the compute (with fetch sub-intervals) before the push, and the
// attempt's admission.
func (w *walker) explainCommit(a *attempt) {
	if !w.budget() {
		w.bail("walk_truncated")
		return
	}
	pushFrom := a.commit
	if a.pushStart != unseen && a.pushStart < pushFrom && a.pushStart >= launchOr(a, 0) {
		pushFrom = a.pushStart
	}
	w.seg(pushFrom, ClassPush, a.key, a.exec, "push_commit")
	w.explainRun(a, pushFrom)
	w.explainTaskStart(a)
}

// explainRun tiles [a.launch, upto] with compute segments, carving out
// the executor's fetch spans that overlap the window.
func (w *walker) explainRun(a *attempt, upto time.Duration) {
	if !w.budget() {
		w.bail("walk_truncated")
		return
	}
	launch := launchOr(a, 0)
	if upto > w.t {
		upto = w.t
	}
	spans := w.m.fetchSpansIn(a.exec, launch, upto)
	for i := len(spans) - 1; i >= 0; i-- {
		w.seg(spans[i].end, ClassCompute, a.key, a.exec, "compute")
		w.seg(spans[i].start, ClassFetch, a.key, a.exec, "input_fetch")
	}
	w.seg(launch, ClassCompute, a.key, a.exec, "compute")
}

// explainTaskStart explains why attempt a launched at w.t (== a.launch).
func (w *walker) explainTaskStart(a *attempt) {
	if !w.budget() {
		w.bail("walk_truncated")
		return
	}
	m := w.m
	sk := stageKey{a.key.Stage, a.key.Epoch}
	s := m.stages[sk]

	if a.key.Attempt > 0 {
		prevKey := a.key
		prevKey.Attempt--
		if prev, ok := m.attempts[prevKey]; ok && prev.relaunch != unseen && prev.launch != unseen {
			// Requeue wait: destruction -> new launch.
			w.seg(prev.relaunch, ClassRelaunch, a.key, relaunchBlame(prev), "requeue_wait")
			// The destroyed attempt's work sits on the path: it ran from
			// its launch until the eviction/failure destroyed it.
			note := "wasted_compute"
			if prev.relaunchNote != "" {
				note = "wasted_compute:" + prev.relaunchNote
			}
			w.seg(prev.launch, ClassRelaunch, prev.key, prev.exec, note)
			w.explainTaskStart(prev)
			return
		}
	}

	if s != nil && s.sched != unseen {
		gate := s.sched
		viaReady := false
		if s.receiverReady != unseen && s.receiverReady > gate && s.receiverReady <= w.t {
			gate = s.receiverReady
			viaReady = true
		}
		w.seg(gate, ClassSched, a.key, "", "task_queue")
		if viaReady {
			w.seg(s.sched, ClassSched, a.key, "", "receiver_setup")
		}
		w.explainStageSched(sk)
		return
	}
	w.bail("unscheduled_stage")
}

// explainStageSched explains why stage epoch sk was scheduled at w.t.
func (w *walker) explainStageSched(sk stageKey) {
	if !w.budget() {
		w.bail("walk_truncated")
		return
	}
	m := w.m

	if sk.Epoch > 1 {
		// A restart: caused by a reserved-container or receiver failure.
		prev := m.stages[stageKey{sk.ID, sk.Epoch - 1}]
		cause, haveCause := m.latestCauseBefore(w.t)
		if prev != nil && prev.sched != unseen {
			if haveCause && cause.t >= prev.sched {
				w.seg(cause.t, ClassRelaunch, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "stage_restart:"+cause.note)
				w.seg(prev.sched, ClassRelaunch, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "lost_stage_work")
			} else {
				w.seg(prev.sched, ClassRelaunch, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "stage_restart")
			}
			w.explainStageSched(prev.key)
			return
		}
	}

	// First schedule: gated by the slowest parent (or, without a plan,
	// by whatever stage completed most recently).
	var pk stageKey
	var pc time.Duration
	found := false
	if parents, ok := m.opts.StageParents[sk.ID]; ok && len(parents) > 0 {
		for _, p := range parents {
			if k, c, ok2 := m.latestCompleteOf(p, w.t); ok2 && (!found || c > pc) {
				pk, pc, found = k, c, true
			}
		}
	} else if m.opts.StageParents == nil {
		pk, pc, found = m.latestCompleteBefore(w.t, sk.ID)
	}
	if found {
		w.seg(pc, ClassSched, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "stage_gap")
		w.explainStageDone(pk)
		return
	}
	w.seg(0, ClassSched, attemptKey{Stage: sk.ID, Frag: -1, Task: -1}, "", "job_setup")
}

// relaunchBlame names the executor blamed for a relaunch segment: the
// evicted container when the relaunch event recorded one, else the
// executor the destroyed attempt ran on.
func relaunchBlame(prev *attempt) string {
	if prev.relaunchExec != "" {
		return prev.relaunchExec
	}
	return prev.exec
}

func launchOr(a *attempt, def time.Duration) time.Duration {
	if a.launch == unseen {
		return def
	}
	return a.launch
}

// reservedFrag mirrors obs.ReservedFrag without re-importing it in hot
// comparisons.
const reservedFrag = -1
