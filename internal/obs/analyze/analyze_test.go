package analyze_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pado/internal/obs"
	"pado/internal/obs/analyze"
)

var update = flag.Bool("update", false, "rewrite golden files")

// handBuilt is a two-stage run with one eviction, fully hand-computed:
//
//	stage 0 (reserved-root): receiver r1, fragment tasks on t1/t2;
//	t2 is evicted at 8ms destroying task 1's first attempt (launched
//	at 2ms), which relaunches on t3 at 11ms. The receiver finalizes
//	at 22ms. Stage 1 (terminal) pulls 500B from stage 0 on t1 during
//	[25ms, 26ms] and completes at 32ms.
//
// Expected critical path (13 segments tiling [0ms, 32ms]):
//
//	compute 15ms, push 2ms, fetch 1ms, sched 5ms, relaunch 9ms
func handBuilt() []obs.Event {
	at := func(msec int) time.Duration { return time.Duration(msec) * time.Millisecond }
	return []obs.Event{
		{T: at(0), Kind: obs.ContainerUp, Exec: "r1", Note: "reserved"},
		{T: at(0), Kind: obs.ContainerUp, Exec: "t1", Note: "transient"},
		{T: at(0), Kind: obs.ContainerUp, Exec: "t2", Note: "transient"},
		{T: at(0), Kind: obs.ContainerUp, Exec: "t3", Note: "transient"},
		{T: at(0), Kind: obs.StageScheduled, Stage: 0},
		{T: at(1), Kind: obs.ReceiverReady, Stage: 0, Frag: obs.ReservedFrag, Task: 0, Exec: "r1"},
		{T: at(1), Kind: obs.TaskLaunched, Stage: 0, Frag: obs.ReservedFrag, Task: 0, Attempt: 0, Exec: "r1"},
		{T: at(2), Kind: obs.TaskLaunched, Stage: 0, Frag: 0, Task: 0, Attempt: 0, Exec: "t1"},
		{T: at(2), Kind: obs.TaskLaunched, Stage: 0, Frag: 0, Task: 1, Attempt: 0, Exec: "t2"},
		{T: at(8), Kind: obs.ContainerEvicted, Exec: "t2"},
		{T: at(9), Kind: obs.TaskRelaunched, Stage: 0, Frag: 0, Task: 1, Attempt: 1, Exec: "t2", Note: "evicted"},
		{T: at(10), Kind: obs.TaskFinished, Stage: 0, Frag: 0, Task: 0, Attempt: 0, Exec: "t1"},
		{T: at(10), Kind: obs.PushStarted, Stage: 0, Frag: 0, Task: 0, Attempt: 0, Exec: "t1", Bytes: 100},
		{T: at(11), Kind: obs.TaskLaunched, Stage: 0, Frag: 0, Task: 1, Attempt: 1, Exec: "t3"},
		{T: at(12), Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 0, Attempt: 0, Exec: "t1", Bytes: 100},
		{T: at(18), Kind: obs.TaskFinished, Stage: 0, Frag: 0, Task: 1, Attempt: 1, Exec: "t3"},
		{T: at(18), Kind: obs.PushStarted, Stage: 0, Frag: 0, Task: 1, Attempt: 1, Exec: "t3", Bytes: 200},
		{T: at(20), Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 1, Attempt: 1, Exec: "t3", Bytes: 200},
		{T: at(22), Kind: obs.TaskFinished, Stage: 0, Frag: obs.ReservedFrag, Task: 0, Attempt: 0, Exec: "r1"},
		{T: at(22), Kind: obs.StageComplete, Stage: 0},
		{T: at(23), Kind: obs.StageScheduled, Stage: 1},
		{T: at(24), Kind: obs.TaskLaunched, Stage: 1, Frag: 0, Task: 0, Attempt: 0, Exec: "t1"},
		{T: at(25), Kind: obs.FetchStarted, Stage: 0, Frag: 0, Task: 0, Exec: "t1", Note: "pull"},
		{T: at(26), Kind: obs.FetchDone, Stage: 0, Frag: 0, Task: 0, Exec: "t1", Note: "pull", Bytes: 500},
		{T: at(30), Kind: obs.TaskFinished, Stage: 1, Frag: 0, Task: 0, Attempt: 0, Exec: "t1"},
		{T: at(31), Kind: obs.PushCommitted, Stage: 1, Frag: 0, Task: 0, Attempt: 0, Exec: "t1", Bytes: 50},
		{T: at(32), Kind: obs.StageComplete, Stage: 1},
	}
}

func handBuiltOptions() analyze.Options {
	return analyze.Options{
		StageParents: map[int][]int{0: {}, 1: {0}},
		JCT:          32 * time.Millisecond,
		Engine:       "pado",
		Workload:     "handbuilt",
		Rate:         "none",
		Seed:         7,
	}
}

func TestAnalyzeHandBuiltCriticalPath(t *testing.T) {
	r := analyze.Analyze(handBuilt(), handBuiltOptions())

	if got, want := r.CritPath.TotalNS, int64(32*time.Millisecond); got != want {
		t.Fatalf("critical path total = %d, want %d (the measured JCT)", got, want)
	}
	wantClasses := map[string]time.Duration{
		analyze.ClassCompute:  15 * time.Millisecond,
		analyze.ClassPush:     2 * time.Millisecond,
		analyze.ClassFetch:    1 * time.Millisecond,
		analyze.ClassSched:    5 * time.Millisecond,
		analyze.ClassRelaunch: 9 * time.Millisecond,
	}
	for class, want := range wantClasses {
		if got := r.CritPath.Class(class); got != int64(want) {
			t.Errorf("class %s = %v, want %v", class, time.Duration(got), want)
		}
	}

	// Segments must tile [0, total] contiguously: that is what makes
	// "critical-path length == JCT" hold by construction.
	segs := r.CritPath.Segments
	if len(segs) != 13 {
		t.Errorf("got %d segments, want 13: %+v", len(segs), segs)
	}
	cursor := int64(0)
	for i, s := range segs {
		if s.StartNS != cursor {
			t.Fatalf("segment %d starts at %d, want %d (gap or overlap)", i, s.StartNS, cursor)
		}
		if s.EndNS <= s.StartNS {
			t.Fatalf("segment %d is empty or reversed: %+v", i, s)
		}
		cursor = s.EndNS
	}
	if cursor != r.CritPath.TotalNS {
		t.Fatalf("segments end at %d, want %d", cursor, r.CritPath.TotalNS)
	}

	// The eviction segment blames the destroyed attempt's executor.
	foundWaste := false
	for _, s := range segs {
		if s.Class == analyze.ClassRelaunch && s.Note == "wasted_compute:evicted" {
			foundWaste = true
			if s.Exec != "t2" {
				t.Errorf("wasted_compute blames %q, want t2", s.Exec)
			}
			if s.Dur() != 7*time.Millisecond {
				t.Errorf("wasted_compute = %v, want 7ms", s.Dur())
			}
		}
	}
	if !foundWaste {
		t.Error("no wasted_compute:evicted segment on the critical path")
	}
}

func TestAnalyzeHandBuiltWaste(t *testing.T) {
	r := analyze.Analyze(handBuilt(), handBuiltOptions())

	w := r.Waste
	if w.EvictionsTotal != 1 || len(w.Evictions) != 1 {
		t.Fatalf("evictions = %d listed / %d total, want 1/1", len(w.Evictions), w.EvictionsTotal)
	}
	ev := w.Evictions[0]
	if ev.Exec != "t2" || ev.TasksKilled != 1 {
		t.Errorf("eviction = %+v, want exec t2 killing 1 task", ev)
	}
	if got, want := ev.ComputeLostNS, int64(7*time.Millisecond); got != want {
		t.Errorf("eviction compute lost = %d, want %d (launch 2ms -> relaunch 9ms)", got, want)
	}
	if w.ComputeLostNS != ev.ComputeLostNS || w.TasksKilled != 1 {
		t.Errorf("waste totals %+v disagree with the per-eviction sum", w)
	}
	if w.FailureTasks != 0 || w.FailureComputeLostNS != 0 || w.RestartComputeLostNS != 0 {
		t.Errorf("unexpected non-eviction waste: %+v", w)
	}

	if r.Containers.Up != 4 || r.Containers.Evicted != 1 || r.Containers.Failed != 0 {
		t.Errorf("containers = %+v, want 4 up / 1 evicted / 0 failed", r.Containers)
	}
}

func TestAnalyzeHandBuiltStages(t *testing.T) {
	r := analyze.Analyze(handBuilt(), handBuiltOptions())

	if len(r.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(r.Stages))
	}
	s0, s1 := r.Stages[0], r.Stages[1]
	if s0.ID != 0 || s1.ID != 1 {
		t.Fatalf("stage order = %d, %d; want 0, 1", s0.ID, s1.ID)
	}
	if s0.Launched != 4 || s0.Relaunched != 1 || s0.Commits != 2 {
		t.Errorf("stage 0 = %+v, want 4 launched / 1 relaunched / 2 commits", s0)
	}
	if s0.PushBytes != 300 || s0.FetchBytes != 500 {
		t.Errorf("stage 0 bytes = push %d fetch %d, want 300/500", s0.PushBytes, s0.FetchBytes)
	}
	// Two fragment attempts finished in stage 0: 8ms and 7ms.
	if s0.Latency.Count != 2 {
		t.Errorf("stage 0 latency count = %d, want 2", s0.Latency.Count)
	}
	if got, want := s0.MaxNS, int64(8*time.Millisecond); got != want {
		t.Errorf("stage 0 max latency = %d, want %d", got, want)
	}
	if s1.Latency.Count != 1 || s1.MaxNS != int64(6*time.Millisecond) {
		t.Errorf("stage 1 latency = %+v, want one 6ms sample", s1.Latency)
	}
	// Too few samples for straggler detection.
	if len(r.Stragglers) != 0 {
		t.Errorf("stragglers = %+v, want none (under 4 samples per stage)", r.Stragglers)
	}
}

func TestAnalyzeDeterministicJSON(t *testing.T) {
	var a, b bytes.Buffer
	if err := analyze.Analyze(handBuilt(), handBuiltOptions()).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := analyze.Analyze(handBuilt(), handBuiltOptions()).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two analyses of the same stream produced different JSON")
	}
}

func TestAnalyzeGolden(t *testing.T) {
	golden := filepath.Join("testdata", "handbuilt.report.json")
	var buf bytes.Buffer
	if err := analyze.Analyze(handBuilt(), handBuiltOptions()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden file; rerun with -update and review the diff\ngot:\n%s", buf.String())
	}

	// The golden file must load back through the padoreport path.
	rep, err := analyze.Load(golden)
	if err != nil {
		t.Fatalf("load golden: %v", err)
	}
	if rep.JCTNS != int64(32*time.Millisecond) {
		t.Errorf("reloaded jct = %d, want 32ms", rep.JCTNS)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatalf("render golden: %v", err)
	}
	if text.Len() == 0 {
		t.Error("text rendering is empty")
	}
}

func TestAnalyzeEmptyStream(t *testing.T) {
	r := analyze.Analyze(nil, analyze.Options{})
	if r.JCTNS != 0 || len(r.Stages) != 0 || len(r.CritPath.Segments) != 0 {
		t.Errorf("empty stream produced non-empty report: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDiffReports(t *testing.T) {
	base := analyze.Analyze(handBuilt(), handBuiltOptions())

	// Stretch the run: shift the eviction's relaunch later so waste and
	// JCT both grow.
	events := handBuilt()
	for i := range events {
		events[i].T *= 2
	}
	opts := handBuiltOptions()
	opts.JCT = 64 * time.Millisecond
	cur := analyze.Analyze(events, opts)

	d := analyze.DiffReports(base, cur, "base", "cur")
	if d.JCTDeltaNS != int64(32*time.Millisecond) {
		t.Errorf("jct delta = %d, want +32ms", d.JCTDeltaNS)
	}
	if d.JCTDeltaPct != 100 {
		t.Errorf("jct delta pct = %v, want 100", d.JCTDeltaPct)
	}
	if d.WasteComputeCurNS != 2*d.WasteComputeBaseNS {
		t.Errorf("waste compute = %d -> %d, want doubled", d.WasteComputeBaseNS, d.WasteComputeCurNS)
	}
	var relaunch analyze.ClassDelta
	for _, c := range d.Classes {
		if c.Class == analyze.ClassRelaunch {
			relaunch = c
		}
	}
	// Every segment doubled, so class shares are unchanged.
	if relaunch.BaseFrac != relaunch.CurFrac {
		t.Errorf("relaunch share moved %v -> %v on a uniform stretch", relaunch.BaseFrac, relaunch.CurFrac)
	}
	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 {
		t.Error("diff text rendering is empty")
	}
}
