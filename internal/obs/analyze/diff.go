package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MarshalDiff renders a diff as indented, newline-terminated JSON.
func MarshalDiff(d *Diff) ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ClassDelta is one critical-path class compared across two reports.
type ClassDelta struct {
	Class   string `json:"class"`
	BaseNS  int64  `json:"base_ns"`
	CurNS   int64  `json:"cur_ns"`
	DeltaNS int64  `json:"delta_ns"`
	// Frac deltas show where the critical path SHIFTED, independent of
	// absolute slowdown.
	BaseFrac float64 `json:"base_frac"`
	CurFrac  float64 `json:"cur_frac"`
}

// StageDelta compares one stage present in both reports.
type StageDelta struct {
	ID         int   `json:"id"`
	BaseP50NS  int64 `json:"base_p50_ns"`
	CurP50NS   int64 `json:"cur_p50_ns"`
	BaseP95NS  int64 `json:"base_p95_ns"`
	CurP95NS   int64 `json:"cur_p95_ns"`
	DeltaP95NS int64 `json:"delta_p95_ns"`
}

// Diff compares two reports of the same experiment cell: the benchmark
// trajectory between a committed baseline and a fresh run.
type Diff struct {
	Base string `json:"base"` // label (usually the baseline path)
	Cur  string `json:"cur"`
	// Run identity of each side, so trajectory comparisons are
	// self-describing about engine and placement policy.
	BaseEngine string `json:"base_engine,omitempty"`
	CurEngine  string `json:"cur_engine,omitempty"`
	BasePolicy string `json:"base_policy,omitempty"`
	CurPolicy  string `json:"cur_policy,omitempty"`

	JCTBaseNS   int64   `json:"jct_base_ns"`
	JCTCurNS    int64   `json:"jct_cur_ns"`
	JCTDeltaNS  int64   `json:"jct_delta_ns"`
	JCTDeltaPct float64 `json:"jct_delta_pct"` // positive = current slower

	Classes []ClassDelta `json:"classes"`

	WasteComputeBaseNS int64 `json:"waste_compute_base_ns"`
	WasteComputeCurNS  int64 `json:"waste_compute_cur_ns"`
	BytesLostBase      int64 `json:"bytes_lost_base"`
	BytesLostCur       int64 `json:"bytes_lost_cur"`
	EvictionsBase      int   `json:"evictions_base"`
	EvictionsCur       int   `json:"evictions_cur"`

	StragglersBase int `json:"stragglers_base"`
	StragglersCur  int `json:"stragglers_cur"`

	// Failure-handling plane: detector declarations and retry/backoff
	// waste compared across the two runs (zero when a side's report has
	// no detection section).
	DeclaredDeadBase int   `json:"declared_dead_base,omitempty"`
	DeclaredDeadCur  int   `json:"declared_dead_cur,omitempty"`
	RPCRetriesBase   int64 `json:"rpc_retries_base,omitempty"`
	RPCRetriesCur    int64 `json:"rpc_retries_cur,omitempty"`
	RPCBackoffBaseNS int64 `json:"rpc_backoff_base_ns,omitempty"`
	RPCBackoffCurNS  int64 `json:"rpc_backoff_cur_ns,omitempty"`
	// Max injection→declaration latency on each side (0 = no anchored
	// declarations), so detector tuning regressions show up in diffs.
	DetectMaxBaseNS int64 `json:"detect_max_base_ns,omitempty"`
	DetectMaxCurNS  int64 `json:"detect_max_cur_ns,omitempty"`

	Stages []StageDelta `json:"stages,omitempty"`
}

// DiffReports computes cur relative to base.
func DiffReports(base, cur *Report, baseLabel, curLabel string) *Diff {
	d := &Diff{
		Base:               baseLabel,
		Cur:                curLabel,
		BaseEngine:         base.Engine,
		CurEngine:          cur.Engine,
		BasePolicy:         base.Policy,
		CurPolicy:          cur.Policy,
		JCTBaseNS:          base.JCTNS,
		JCTCurNS:           cur.JCTNS,
		JCTDeltaNS:         cur.JCTNS - base.JCTNS,
		WasteComputeBaseNS: base.Waste.ComputeLostNS + base.Waste.FailureComputeLostNS + base.Waste.RestartComputeLostNS,
		WasteComputeCurNS:  cur.Waste.ComputeLostNS + cur.Waste.FailureComputeLostNS + cur.Waste.RestartComputeLostNS,
		BytesLostBase:      base.Waste.BytesLost,
		BytesLostCur:       cur.Waste.BytesLost,
		EvictionsBase:      base.Waste.EvictionsTotal,
		EvictionsCur:       cur.Waste.EvictionsTotal,
		StragglersBase:     len(base.Stragglers),
		StragglersCur:      len(cur.Stragglers),
	}
	if base.JCTNS > 0 {
		d.JCTDeltaPct = float64(d.JCTDeltaNS) / float64(base.JCTNS) * 100
	}

	detect := func(r *Report) (declared int, retries, backoff, maxLat int64) {
		if r.Detection == nil {
			return
		}
		declared = len(r.Detection.Declared)
		retries = r.Detection.RPCRetries
		backoff = r.Detection.RPCBackoffNS
		for _, decl := range r.Detection.Declared {
			if decl.LatencyNS > maxLat {
				maxLat = decl.LatencyNS
			}
		}
		return
	}
	d.DeclaredDeadBase, d.RPCRetriesBase, d.RPCBackoffBaseNS, d.DetectMaxBaseNS = detect(base)
	d.DeclaredDeadCur, d.RPCRetriesCur, d.RPCBackoffCurNS, d.DetectMaxCurNS = detect(cur)

	fracOf := func(cp CritPath, class string) float64 {
		if cp.TotalNS <= 0 {
			return 0
		}
		return float64(cp.Class(class)) / float64(cp.TotalNS)
	}
	for _, class := range Classes {
		b, c := base.CritPath.Class(class), cur.CritPath.Class(class)
		d.Classes = append(d.Classes, ClassDelta{
			Class:    class,
			BaseNS:   b,
			CurNS:    c,
			DeltaNS:  c - b,
			BaseFrac: fracOf(base.CritPath, class),
			CurFrac:  fracOf(cur.CritPath, class),
		})
	}

	baseStages := make(map[int]StageReport, len(base.Stages))
	for _, s := range base.Stages {
		baseStages[s.ID] = s
	}
	for _, c := range cur.Stages {
		b, ok := baseStages[c.ID]
		if !ok {
			continue
		}
		d.Stages = append(d.Stages, StageDelta{
			ID:         c.ID,
			BaseP50NS:  b.P50NS,
			CurP50NS:   c.P50NS,
			BaseP95NS:  b.P95NS,
			CurP95NS:   c.P95NS,
			DeltaP95NS: c.P95NS - b.P95NS,
		})
	}
	sort.Slice(d.Stages, func(i, j int) bool { return d.Stages[i].ID < d.Stages[j].ID })
	return d
}

// CritShift returns the largest absolute critical-path fraction shift
// across classes, and its class name. A big shift means the job's
// bottleneck moved (e.g. compute-bound → relaunch-bound) even if JCT
// barely changed.
func (d *Diff) CritShift() (string, float64) {
	bestClass, best := "", 0.0
	for _, c := range d.Classes {
		shift := c.CurFrac - c.BaseFrac
		if shift < 0 {
			shift = -shift
		}
		if shift > best {
			bestClass, best = c.Class, shift
		}
	}
	return bestClass, best
}

func signedDur(ns int64) string {
	if ns >= 0 {
		return "+" + dur(ns)
	}
	return "-" + dur(-ns)
}

// WriteText renders the diff for terminals.
func (d *Diff) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	ident := func(engine, policy string) string {
		if engine == "" && policy == "" {
			return ""
		}
		s := " ["
		if engine != "" {
			s += "engine=" + engine
		}
		if policy != "" {
			if engine != "" {
				s += " "
			}
			s += "policy=" + policy
		}
		return s + "]"
	}
	if err := p("base: %s%s\ncur:  %s%s\n",
		d.Base, ident(d.BaseEngine, d.BasePolicy),
		d.Cur, ident(d.CurEngine, d.CurPolicy)); err != nil {
		return err
	}
	if err := p("jct: %s -> %s (%s, %+.1f%%)\n",
		dur(d.JCTBaseNS), dur(d.JCTCurNS), signedDur(d.JCTDeltaNS), d.JCTDeltaPct); err != nil {
		return err
	}
	if err := p("critical path by class:\n"); err != nil {
		return err
	}
	for _, c := range d.Classes {
		if err := p("  %-9s %9s -> %9s (%s; share %4.1f%% -> %4.1f%%)\n",
			c.Class, dur(c.BaseNS), dur(c.CurNS), signedDur(c.DeltaNS),
			c.BaseFrac*100, c.CurFrac*100); err != nil {
			return err
		}
	}
	if class, shift := d.CritShift(); shift >= 0.10 {
		if err := p("  bottleneck shift: %s moved %+.1f points\n", class, shift*100); err != nil {
			return err
		}
	}
	if err := p("waste: compute %s -> %s; bytes %s -> %s; evictions %d -> %d\n",
		dur(d.WasteComputeBaseNS), dur(d.WasteComputeCurNS),
		kb(d.BytesLostBase), kb(d.BytesLostCur),
		d.EvictionsBase, d.EvictionsCur); err != nil {
		return err
	}
	if err := p("stragglers: %d -> %d\n", d.StragglersBase, d.StragglersCur); err != nil {
		return err
	}
	if d.DeclaredDeadBase != 0 || d.DeclaredDeadCur != 0 ||
		d.RPCRetriesBase != 0 || d.RPCRetriesCur != 0 {
		if err := p("detection: declared dead %d -> %d (max latency %s -> %s); rpc retries %d -> %d (backoff %s -> %s)\n",
			d.DeclaredDeadBase, d.DeclaredDeadCur,
			dur(d.DetectMaxBaseNS), dur(d.DetectMaxCurNS),
			d.RPCRetriesBase, d.RPCRetriesCur,
			dur(d.RPCBackoffBaseNS), dur(d.RPCBackoffCurNS)); err != nil {
			return err
		}
	}
	for _, s := range d.Stages {
		if s.DeltaP95NS == 0 {
			continue
		}
		if err := p("  stage %d p95 %s -> %s (%s)\n",
			s.ID, dur(s.BaseP95NS), dur(s.CurP95NS), signedDur(s.DeltaP95NS)); err != nil {
			return err
		}
	}
	return nil
}
