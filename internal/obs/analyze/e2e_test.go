package analyze_test

import (
	"context"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/obs"
	"pado/internal/obs/analyze"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

// TestAnalyzeChaosRun is the acceptance check for the waste accounting:
// run a real MR job under a scripted eviction schedule, then verify
// against the raw event stream that
//
//  1. per-eviction waste attribution sums to the total compute time of
//     relaunch-destroyed attempts (eviction bucket + failure bucket
//     together cover every destroyed attempt exactly), and
//  2. the critical-path length equals the measured JCT within one
//     scheduling quantum.
func TestAnalyzeChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analyzer run skipped in short mode")
	}

	plan := &chaos.Plan{Name: "analyzer-evictions", Rules: []chaos.Rule{
		{ID: "first", Trigger: chaos.Trigger{On: "push_started", Count: 1, Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		{Trigger: chaos.Trigger{On: "task_relaunched", After: "first", Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault: chaos.Fault{Op: chaos.OpEvict, Stage: chaos.Any}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan: %v", err)
	}

	cl, err := cluster.New(cluster.Config{
		Transient:   6,
		Reserved:    2,
		Slots:       4,
		Lifetimes:   trace.Lifetimes(trace.RateNone),
		Scale:       vtime.NewScale(50 * time.Millisecond),
		MinLifetime: 30 * time.Millisecond,
		Seed:        77,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}

	tracer := obs.New()
	eng := chaos.NewEngine(plan, cl)
	eng.Attach(tracer)
	defer eng.Stop()

	cfg := workloads.DefaultMRConfig()
	cfg.Partitions, cfg.LinesPerPart = 8, 400
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := runtime.Run(ctx, cl, workloads.MR(cfg).Graph(), runtime.Config{Tracer: tracer, Chaos: eng})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	eng.Stop()
	if len(eng.Injections()) == 0 {
		t.Fatal("no faults fired; scenario is vacuous")
	}

	parents := make(map[int][]int, len(res.Plan.Stages))
	for _, ps := range res.Plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	events := tracer.Events()
	rep := analyze.Analyze(events, analyze.Options{
		StageParents: parents,
		JCT:          res.Metrics.JCT,
		Snapshot:     &res.Metrics,
	})

	// (1) Independently recompute destroyed compute from the raw stream:
	// every TaskRelaunched(attempt=n>0) destroys attempt n-1, which lost
	// [launch, min(finish, relaunch)]. MR under an eviction-only plan
	// never restarts stages, so (stage, frag, task, attempt) is unique.
	type akey struct{ stage, frag, task, attempt int }
	launch := make(map[akey]time.Duration)
	finish := make(map[akey]time.Duration)
	var wantLost time.Duration
	wantKilled := 0
	for _, ev := range events {
		k := akey{ev.Stage, ev.Frag, ev.Task, ev.Attempt}
		switch ev.Kind {
		case obs.TaskLaunched:
			if _, ok := launch[k]; !ok {
				launch[k] = ev.T
			}
		case obs.TaskFinished:
			if _, ok := finish[k]; !ok {
				finish[k] = ev.T
			}
		case obs.TaskRelaunched:
			if ev.Attempt == 0 || ev.Frag == obs.ReservedFrag {
				continue
			}
			prev := akey{ev.Stage, ev.Frag, ev.Task, ev.Attempt - 1}
			l, ok := launch[prev]
			if !ok {
				continue
			}
			end := ev.T
			if f, ok := finish[prev]; ok && f < end {
				end = f
			}
			if end > l {
				wantLost += end - l
			}
			wantKilled++
		case obs.StageScheduled:
			// A restart would reset attempt numbering and break the flat
			// keying above; this plan must not produce one.
			if _, seen := launch[akey{ev.Stage, -2, -2, -2}]; seen {
				t.Fatal("stage scheduled twice; test assumption violated")
			}
			launch[akey{ev.Stage, -2, -2, -2}] = ev.T
		}
	}
	if wantKilled == 0 {
		t.Fatal("no attempts destroyed; scenario is vacuous")
	}

	gotLost := time.Duration(rep.Waste.ComputeLostNS + rep.Waste.FailureComputeLostNS)
	if gotLost != wantLost {
		t.Errorf("destroyed compute: report %v (eviction %v + failure %v), independent recompute %v",
			gotLost, time.Duration(rep.Waste.ComputeLostNS),
			time.Duration(rep.Waste.FailureComputeLostNS), wantLost)
	}
	if got := rep.Waste.TasksKilled + rep.Waste.FailureTasks; got != wantKilled {
		t.Errorf("destroyed attempts: report %d, independent recompute %d", got, wantKilled)
	}

	// Per-eviction rows must sum to the eviction-bucket totals.
	var sumLost, sumBytes int64
	sumKilled := 0
	for _, ev := range rep.Waste.Evictions {
		sumLost += ev.ComputeLostNS
		sumBytes += ev.BytesLost
		sumKilled += ev.TasksKilled
	}
	if sumLost != rep.Waste.ComputeLostNS || sumKilled != rep.Waste.TasksKilled || sumBytes != rep.Waste.BytesLost {
		t.Errorf("per-eviction rows (%d tasks, %dns, %dB) disagree with totals (%d, %d, %d)",
			sumKilled, sumLost, sumBytes,
			rep.Waste.TasksKilled, rep.Waste.ComputeLostNS, rep.Waste.BytesLost)
	}

	// (2) Critical path length vs. measured JCT. The walk tiles the event
	// stream's span exactly; the runtime measures JCT a hair after the
	// last stage completes, so allow one scheduling quantum of skew.
	quantum := 25 * time.Millisecond
	diff := time.Duration(rep.CritPath.TotalNS) - res.Metrics.JCT
	if diff < 0 {
		diff = -diff
	}
	if diff > quantum {
		t.Errorf("critical path %v vs measured JCT %v: off by %v (> %v)",
			time.Duration(rep.CritPath.TotalNS), res.Metrics.JCT, diff, quantum)
	}

	// Segments must still tile [0, total] on a real run.
	cursor := int64(0)
	for i, s := range rep.CritPath.Segments {
		if s.StartNS != cursor {
			t.Fatalf("segment %d starts at %d, want %d", i, s.StartNS, cursor)
		}
		cursor = s.EndNS
	}
	if cursor != rep.CritPath.TotalNS {
		t.Fatalf("segments end at %d, want %d", cursor, rep.CritPath.TotalNS)
	}
}
