package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pado/internal/vtime"
)

// stageStat accumulates one stage's timeline facts.
type stageStat struct {
	id           int
	scheduled    []time.Duration
	complete     []time.Duration
	launched     int
	relaunched   int
	failed       int
	pushes       int
	pushBytes    int64
	fetches      int
	fetchBytes   int64
	reservedDone int
}

// WriteTimeline renders a plain-text account of a recorded run: a
// chronological log of the control-plane beats (stage transitions,
// container churn) followed by a per-stage summary table. With a
// non-zero scale, times print as paper minutes ("2.41m"); otherwise as
// wall-clock durations.
func WriteTimeline(w io.Writer, events []Event, scale vtime.Scale) error {
	ts := func(t time.Duration) string {
		if scale.WallPerMinute > 0 {
			return fmt.Sprintf("%7.2fm", scale.Minutes(t))
		}
		return fmt.Sprintf("%9s", t.Round(100*time.Microsecond))
	}

	stages := make(map[int]*stageStat)
	stat := func(id int) *stageStat {
		s, ok := stages[id]
		if !ok {
			s = &stageStat{id: id}
			stages[id] = s
		}
		return s
	}

	var evictions, failures, launches int
	if _, err := fmt.Fprintln(w, "timeline:"); err != nil {
		return err
	}
	for _, ev := range events {
		var line string
		switch ev.Kind {
		case StageScheduled:
			s := stat(ev.Stage)
			s.scheduled = append(s.scheduled, ev.T)
			line = fmt.Sprintf("stage %d scheduled", ev.Stage)
			if n := len(s.scheduled); n > 1 {
				line += fmt.Sprintf(" (restart %d)", n-1)
			}
		case StageComplete:
			s := stat(ev.Stage)
			s.complete = append(s.complete, ev.T)
			line = fmt.Sprintf("stage %d complete", ev.Stage)
		case ContainerUp:
			// Counted, not narrated: initial allocations would flood the
			// log and replacements follow each narrated eviction.
			launches++
			continue
		case ContainerEvicted:
			evictions++
			line = fmt.Sprintf("container %s evicted", ev.Exec)
		case ContainerFailed:
			failures++
			line = fmt.Sprintf("container %s FAILED", ev.Exec)
		case ChaosInjected:
			line = fmt.Sprintf("chaos: %s", ev.Note)
			if ev.Exec != "" {
				line += fmt.Sprintf(" (target %s)", ev.Exec)
			}
		case JobAborted:
			line = fmt.Sprintf("job ABORTED: %s", ev.Note)
		case TaskLaunched:
			stat(ev.Stage).launched++
			continue
		case TaskRelaunched:
			stat(ev.Stage).relaunched++
			continue
		case TaskFailed:
			stat(ev.Stage).failed++
			continue
		case TaskFinished:
			if ev.Frag == ReservedFrag {
				stat(ev.Stage).reservedDone++
			}
			continue
		case PushCommitted:
			stat(ev.Stage).pushes++
			continue
		case PushStarted:
			stat(ev.Stage).pushBytes += ev.Bytes
			continue
		case FetchDone:
			s := stat(ev.Stage)
			s.fetches++
			s.fetchBytes += ev.Bytes
			continue
		default:
			continue
		}
		if _, err := fmt.Fprintf(w, "  %s  %s\n", ts(ev.T), line); err != nil {
			return err
		}
	}

	ids := make([]int, 0, len(stages))
	for id := range stages {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	if _, err := fmt.Fprintf(w, "stages:\n  %5s %9s %9s %8s %10s %7s %7s %10s %10s\n",
		"stage", "sched", "done", "launched", "relaunched", "failed", "pushes", "pushedB", "fetchedB"); err != nil {
		return err
	}
	for _, id := range ids {
		s := stages[id]
		sched, done := "-", "-"
		if len(s.scheduled) > 0 {
			sched = ts(s.scheduled[0])
		}
		if len(s.complete) > 0 {
			done = ts(s.complete[len(s.complete)-1])
		}
		if _, err := fmt.Fprintf(w, "  %5d %9s %9s %8d %10d %7d %7d %10d %10d\n",
			id, sched, done, s.launched, s.relaunched, s.failed, s.pushes, s.pushBytes, s.fetchBytes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "containers: %d launched, %d evicted, %d failed\n", launches, evictions, failures)
	return err
}
