package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"pado/internal/vtime"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps and durations are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// spanPairs maps span-opening kinds to their closing kinds. Start/end
// events sharing a (Stage, Frag, Task, Attempt) key are folded into one
// complete ("X") slice; relaunches give the key a fresh Attempt, and
// same-key reserved-task generations are matched FIFO in time order.
var spanPairs = map[Kind][]Kind{
	TaskLaunched: {TaskFinished, TaskFailed},
	PushStarted:  {PushCommitted},
	FetchStarted: {FetchDone},
}

// spanEnds is the inverse index: closing kind -> opening kind.
var spanEnds = func() map[Kind]Kind {
	m := make(map[Kind]Kind)
	for start, ends := range spanPairs {
		for _, end := range ends {
			m[end] = start
		}
	}
	return m
}()

type spanKey struct {
	Start   Kind
	Stage   int
	Frag    int
	Task    int
	Attempt int
}

// chromeTS converts a virtual timestamp to trace microseconds. With a
// non-zero scale, one paper minute renders as one second of trace time
// (60e6 µs per... minute compressed 60x) so minute-granularity runs stay
// navigable; without a scale, wall-clock microseconds are used.
func chromeTS(t time.Duration, scale vtime.Scale) float64 {
	if scale.WallPerMinute > 0 {
		return scale.Minutes(t) * 1e6 // 1 paper minute = 1s of trace time
	}
	return float64(t) / float64(time.Microsecond)
}

// WriteChromeTrace renders events as Chrome trace_event JSON. Each
// executor (and the master) becomes one named thread; Task, Push, and
// Fetch start/end pairs become duration slices; everything else becomes
// an instant event. The result loads directly in chrome://tracing and
// ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event, scale vtime.Scale) error {
	// Thread ids: master first, then executors by first appearance.
	tids := map[string]int{"": 0}
	tidOrder := []string{""}
	tidOf := func(exec string) int {
		id, ok := tids[exec]
		if !ok {
			id = len(tids)
			tids[exec] = id
			tidOrder = append(tidOrder, exec)
		}
		return id
	}

	var out []chromeEvent
	add := func(ce chromeEvent) { out = append(out, ce) }

	args := func(ev Event) map[string]any {
		a := map[string]any{"stage": ev.Stage, "kind": ev.Kind.String()}
		if ev.Frag != 0 {
			a["frag"] = ev.Frag
		}
		a["task"] = ev.Task
		a["attempt"] = ev.Attempt
		if ev.Exec != "" {
			a["exec"] = ev.Exec
		}
		if ev.Bytes != 0 {
			a["bytes"] = ev.Bytes
		}
		if ev.Note != "" {
			a["note"] = ev.Note
		}
		return a
	}

	// open tracks unmatched span starts, FIFO per key.
	open := make(map[spanKey][]Event)

	for _, ev := range events {
		if _, isStart := spanPairs[ev.Kind]; isStart {
			k := spanKey{Start: ev.Kind, Stage: ev.Stage, Frag: ev.Frag, Task: ev.Task, Attempt: ev.Attempt}
			open[k] = append(open[k], ev)
			continue
		}
		if startKind, isEnd := spanEnds[ev.Kind]; isEnd {
			k := spanKey{Start: startKind, Stage: ev.Stage, Frag: ev.Frag, Task: ev.Task, Attempt: ev.Attempt}
			if q := open[k]; len(q) > 0 {
				st := q[0]
				if len(q) == 1 {
					delete(open, k)
				} else {
					open[k] = q[1:]
				}
				dur := chromeTS(ev.T, scale) - chromeTS(st.T, scale)
				if dur < 1 {
					dur = 1 // chrome://tracing hides zero-width slices
				}
				a := args(st)
				a["end"] = ev.Kind.String()
				if ev.Bytes != 0 {
					a["bytes"] = ev.Bytes
				}
				add(chromeEvent{
					Name: spanName(startKind, ev), Phase: "X",
					TS: chromeTS(st.T, scale), Dur: dur,
					PID: 1, TID: tidOf(spanExec(st, ev)), Cat: startKind.String(),
					Args: a,
				})
				continue
			}
			// Unmatched end (e.g. commit of a push whose start predates
			// tracing): fall through to an instant event.
		}
		scope := "t"
		switch ev.Kind {
		case ContainerUp, ContainerEvicted, ContainerFailed, ChaosInjected, JobAborted:
			scope = "g" // global: eviction waves and injected faults should be visible everywhere
		}
		add(chromeEvent{
			Name: ev.Kind.String(), Phase: "i",
			TS: chromeTS(ev.T, scale), PID: 1, TID: tidOf(ev.Exec),
			Scope: scope, Cat: ev.Kind.String(), Args: args(ev),
		})
	}

	// Leftover unmatched starts render as instants so nothing is lost.
	var leftovers []Event
	for _, q := range open {
		leftovers = append(leftovers, q...)
	}
	sort.SliceStable(leftovers, func(i, j int) bool { return leftovers[i].T < leftovers[j].T })
	for _, ev := range leftovers {
		add(chromeEvent{
			Name: ev.Kind.String(), Phase: "i",
			TS: chromeTS(ev.T, scale), PID: 1, TID: tidOf(ev.Exec),
			Scope: "t", Cat: ev.Kind.String(), Args: args(ev),
		})
	}

	// Metadata: process and thread names, and explicit thread ordering
	// (master, then executors in first-appearance order).
	meta := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "pado"},
	}}
	for _, exec := range tidOrder {
		name := exec
		if name == "" {
			name = "master"
		}
		meta = append(meta,
			chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: tids[exec],
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Phase: "M", PID: 1, TID: tids[exec],
				Args: map[string]any{"sort_index": tids[exec]}},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

// spanName labels a completed slice.
func spanName(start Kind, end Event) string {
	switch start {
	case TaskLaunched:
		if end.Frag == ReservedFrag {
			return "reserved_task"
		}
		if end.Kind == TaskFailed {
			return "task_failed"
		}
		return "task"
	case PushStarted:
		return "push"
	case FetchStarted:
		return "fetch"
	}
	return start.String()
}

// spanExec picks the thread a slice renders on: the start event's
// executor, falling back to the end's (the master learns the executor of
// some completions only at commit time).
func spanExec(start, end Event) string {
	if start.Exec != "" {
		return start.Exec
	}
	return end.Exec
}
